"""Classic database-driven photomosaic (the paper's Fig. 1 baseline).

The paper's introduction describes the conventional pipeline: divide the
target image into subimages and replace each with the most similar image
from a database.  This example builds a database from the tiles of every
standard stand-in image, then renders a target both ways — with tile reuse
(the classic look) and without (each database tile used at most once,
which is an assignment problem).

Run:  python examples/database_mosaic.py
"""

from __future__ import annotations

import os

import numpy as np

from repro import DatabaseMosaic, TileDatabase, save_image, standard_image
from repro.imaging import STANDARD_IMAGES, psnr

OUT_DIR = os.path.join(os.path.dirname(__file__), "output", "database")


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    size = 512
    tile_size = 16
    target = standard_image("portrait", size)

    # Database: all tiles of every stand-in image except the target itself.
    sources = [
        standard_image(name, size) for name in STANDARD_IMAGES if name != "portrait"
    ]
    databases = [TileDatabase.from_image_tiles(img, tile_size) for img in sources]
    tiles = np.concatenate([db.tiles for db in databases])
    database = TileDatabase(tiles=tiles)
    print(f"database: {database.size} tiles of {tile_size}x{tile_size}px")

    mosaic = DatabaseMosaic(database)
    save_image(os.path.join(OUT_DIR, "target.png"), target)

    with_reuse, choice = mosaic.generate(target, allow_reuse=True)
    save_image(os.path.join(OUT_DIR, "mosaic_with_reuse.png"), with_reuse)
    unique_used = len(np.unique(choice))
    print(
        f"with reuse   : PSNR {psnr(with_reuse, target):6.2f} dB, "
        f"{unique_used}/{choice.size} distinct tiles used"
    )

    without_reuse, choice = mosaic.generate(target, allow_reuse=False)
    save_image(os.path.join(OUT_DIR, "mosaic_without_reuse.png"), without_reuse)
    assert len(np.unique(choice)) == choice.size
    print(
        f"without reuse: PSNR {psnr(without_reuse, target):6.2f} dB, "
        f"every tile distinct"
    )
    print(f"\nimages written to {OUT_DIR}")


if __name__ == "__main__":
    main()
