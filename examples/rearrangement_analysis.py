"""Analysing what a rearrangement actually does.

Two views of the portrait->sailboat rearrangement the paper never shows:

1. the convergence curve of Algorithm 1 (error and swaps per sweep), and
2. the tile-displacement distribution — after histogram matching, how far
   do tiles really travel?

Run:  python examples/rearrangement_analysis.py
"""

from __future__ import annotations

from repro import standard_image
from repro.analysis import convergence_table, displacement_stats
from repro.cost import error_matrix
from repro.imaging.histogram import match_histogram
from repro.localsearch import local_search_serial
from repro.tiles import TileGrid


def main() -> None:
    size, tiles_per_side = 256, 16
    inp = standard_image("portrait", size)
    tgt = standard_image("sailboat", size)
    grid = TileGrid.from_tile_count(size, tiles_per_side)
    matrix = error_matrix(
        grid.split(match_histogram(inp, tgt)), grid.split(tgt)
    )
    result = local_search_serial(matrix)

    print(convergence_table(result.trace, title="Algorithm 1 convergence"))
    print()

    stats = displacement_stats(grid, result.permutation)
    print(f"tile displacement over a {grid.rows}x{grid.cols} grid:")
    print(f"  mean distance      : {stats.mean:6.2f} tiles")
    print(f"  median distance    : {stats.median:6.2f} tiles")
    print(f"  max distance       : {stats.max:6.2f} tiles")
    print(f"  tiles that stayed  : {100 * stats.stationary_fraction:5.1f}%")
    print()
    print("  distance histogram (unit bins):")
    peak = max(stats.displacement_histogram) or 1
    for distance, count in enumerate(stats.displacement_histogram):
        if count == 0:
            continue
        bar = "#" * max(1, round(40 * count / peak))
        print(f"  {distance:>3}..{distance + 1:<3} {count:>5}  {bar}")


if __name__ == "__main__":
    main()
