"""The virtual GPU in action: kernels, counters and the performance model.

Runs the paper's two kernels (Section V) on the SIMT virtual GPU, shows the
metered work they report, and prints the calibrated performance model's
predictions for the paper's full evaluation grid — the numbers behind the
Table II-IV "paper-scale" columns in EXPERIMENTS.md.

Run:  python examples/gpu_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro import standard_image
from repro.benchharness.tables import format_table
from repro.coloring import build_edge_groups
from repro.cost import error_matrix
from repro.gpusim import TESLA_K40, KernelStats, PerformanceModel
from repro.gpusim.kernels import error_matrix_gpu, run_swap_class_on_device
from repro.imaging.histogram import match_histogram
from repro.tiles import TileGrid, identity_permutation


def main() -> None:
    size, tiles_per_side = 256, 16
    inp = match_histogram(
        standard_image("portrait", size), standard_image("sailboat", size)
    )
    tgt = standard_image("sailboat", size)
    grid = TileGrid.from_tile_count(size, tiles_per_side)
    tiles_in, tiles_tg = grid.split(inp), grid.split(tgt)
    s = grid.tile_count

    print(f"device: {TESLA_K40.name} ({TESLA_K40.total_cores} cores, "
          f"{TESLA_K40.mem_bandwidth / 1e9:.0f} GB/s)\n")

    # --- Step 2 kernel -----------------------------------------------------
    stats = KernelStats()
    matrix = error_matrix_gpu(tiles_in, tiles_tg, stats=stats)
    reference = error_matrix(tiles_in, tiles_tg)
    assert (matrix == reference).all(), "kernel result must match host result"
    print("Step 2 kernel (error matrix):")
    print(f"  launches={stats.launches} blocks={stats.blocks} "
          f"lane_ops={stats.lane_ops:,} barriers={stats.barriers}")
    print(f"  exact SAD op count S*N^2 = {s * size * size:,}\n")

    # --- Step 3 kernel -----------------------------------------------------
    perm = identity_permutation(s)
    groups = build_edge_groups(s)
    stats = KernelStats()
    swaps = 0
    for us, vs in groups.classes:
        swaps += run_swap_class_on_device(matrix, perm, us, vs, stats=stats)
    print("Step 3 kernel (one sweep of Algorithm 2):")
    print(f"  launches={stats.launches} (= number of colour classes with pairs)")
    print(f"  committed swaps in first sweep: {swaps}\n")

    # --- Simulated device timeline -------------------------------------
    from repro.gpusim import SimulatedTimeline
    from repro.tiles.permutation import identity_permutation as ident

    timeline = SimulatedTimeline()
    stats = KernelStats()
    error_matrix_gpu(tiles_in, tiles_tg, stats=stats)
    timeline.record("error_matrix", stats, bytes_moved=s * s * grid.pixels_per_tile * 2)
    perm2 = ident(s)
    for index, (us, vs) in enumerate(groups.classes[:8]):
        if us.size == 0:
            continue
        stats = KernelStats()
        run_swap_class_on_device(matrix, perm2, us, vs, stats=stats)
        timeline.record(f"swap_P{index + 1}", stats, bytes_moved=int(us.size) * 48)
    print("Simulated device timeline (Step 2 + first 8 swap classes):")
    print(timeline.render())
    print()

    # --- Performance model --------------------------------------------------
    model = PerformanceModel()
    rows = []
    for n in (512, 1024, 2048):
        for t in (16, 32, 64):
            s_cell = t * t
            rows.append(
                [
                    f"{n}x{n}",
                    f"{t}x{t}",
                    model.error_matrix_time(n, s_cell, "cpu"),
                    model.error_matrix_time(n, s_cell, "gpu"),
                    model.matching_time(s_cell),
                    model.approximation_time(s_cell, "cpu"),
                    model.approximation_time(s_cell, "gpu"),
                    model.speedup(n, s_cell, "optimization"),
                    model.speedup(n, s_cell, "approximation"),
                ]
            )
    print(
        format_table(
            "Performance-model predictions for the paper's hardware",
            ["size", "S", "step2 CPU", "step2 GPU", "matching",
             "apx CPU", "apx GPU", "opt spdup", "apx spdup"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
