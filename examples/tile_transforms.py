"""Extension: rearranging with tile rotations and flips.

The paper places tiles in their original orientation only.  Allowing the 8
dihedral orientations per tile (``allow_transforms=True``) gives the
optimizer a richer catalogue — every tile counts as eight — at 8x the
Step-2 cost.  This example compares the two modes and reports how many
tiles the optimizer chose to rotate or flip.

Run:  python examples/tile_transforms.py
"""

from __future__ import annotations

import os
from collections import Counter

from repro import generate_photomosaic, save_image, standard_image
from repro.imaging import psnr, side_by_side

OUT_DIR = os.path.join(os.path.dirname(__file__), "output", "transforms")

ORIENTATION_NAMES = {
    0: "unchanged",
    1: "rot 90",
    2: "rot 180",
    3: "rot 270",
    4: "flip",
    5: "flip + rot 90",
    6: "flip + rot 180",
    7: "flip + rot 270",
}


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    size, tiles_per_side = 256, 16
    inp = standard_image("portrait", size)
    tgt = standard_image("sailboat", size)
    tile_size = size // tiles_per_side

    plain = generate_photomosaic(
        inp, tgt, tile_size=tile_size, algorithm="optimization"
    )
    transformed = generate_photomosaic(
        inp, tgt, tile_size=tile_size, algorithm="optimization",
        allow_transforms=True,
    )

    save_image(os.path.join(OUT_DIR, "plain.png"), plain.image)
    save_image(os.path.join(OUT_DIR, "transformed.png"), transformed.image)
    save_image(
        os.path.join(OUT_DIR, "sheet.png"),
        side_by_side(tgt, plain.image, transformed.image),
    )

    improvement = 100 * (plain.total_error - transformed.total_error) / plain.total_error
    print(f"plain       : error {plain.total_error:>9}, "
          f"PSNR {psnr(plain.image, tgt):6.2f} dB")
    print(f"transforms  : error {transformed.total_error:>9}, "
          f"PSNR {psnr(transformed.image, tgt):6.2f} dB "
          f"({improvement:.1f}% lower error)")
    print()
    counts = Counter(int(c) for c in transformed.meta["orientations"])
    print("orientations chosen:")
    for code in sorted(counts):
        share = 100 * counts[code] / tiles_per_side**2
        print(f"  {ORIENTATION_NAMES[code]:<16} {counts[code]:>4} tiles ({share:4.1f}%)")
    print(f"\nimages written to {OUT_DIR}")


if __name__ == "__main__":
    main()
