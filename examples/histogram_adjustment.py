"""Figure 3 reproduction: adjusting the input's intensity distribution.

Section II of the paper histogram-matches the input image to the target
before rearranging, because tiles can only reproduce intensities the input
actually contains.  This example writes the before/after images, prints
histogram statistics, and quantifies the benefit: the same rearrangement
pipeline run with and without the adjustment.

Run:  python examples/histogram_adjustment.py
"""

from __future__ import annotations

import os

import numpy as np

from repro import generate_photomosaic, match_histogram, save_image, standard_image
from repro.imaging import cumulative_histogram

OUT_DIR = os.path.join(os.path.dirname(__file__), "output", "histogram")


def describe(name: str, image: np.ndarray) -> None:
    print(
        f"{name:<22} mean={image.mean():7.2f}  std={image.std():6.2f}  "
        f"range=[{image.min()}, {image.max()}]"
    )


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    size = 512
    input_image = standard_image("portrait", size)
    target_image = standard_image("sailboat", size)
    adjusted = match_histogram(input_image, target_image)

    save_image(os.path.join(OUT_DIR, "input.png"), input_image)
    save_image(os.path.join(OUT_DIR, "target.png"), target_image)
    save_image(os.path.join(OUT_DIR, "input_adjusted.png"), adjusted)

    describe("input", input_image)
    describe("target", target_image)
    describe("input (adjusted)", adjusted)
    # CDF distance to the target before/after: the adjustment's whole point.
    cdf_target = cumulative_histogram(target_image)
    before = float(np.abs(cumulative_histogram(input_image) - cdf_target).mean())
    after = float(np.abs(cumulative_histogram(adjusted) - cdf_target).mean())
    print(f"\nmean |CDF - target CDF|: before={before:.4f}  after={after:.4f}")

    for matched in (False, True):
        result = generate_photomosaic(
            input_image,
            target_image,
            tile_size=16,
            algorithm="parallel",
            histogram_match=matched,
        )
        label = "with" if matched else "without"
        print(f"total error {label} adjustment: {result.total_error}")
        save_image(os.path.join(OUT_DIR, f"mosaic_{label}_adjustment.png"), result.image)
    print(f"\nimages written to {OUT_DIR}")


if __name__ == "__main__":
    main()
