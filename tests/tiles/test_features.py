"""Tests for tile feature extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.tiles.features import mean_luminance, tile_features


class TestMeanLuminance:
    def test_constant_tiles(self):
        tiles = np.full((3, 4, 4), 100, dtype=np.uint8)
        assert (mean_luminance(tiles) == 100.0).all()

    def test_matches_numpy_mean(self, tile_stacks_8x8):
        tiles, _ = tile_stacks_8x8
        expected = tiles.reshape(tiles.shape[0], -1).mean(axis=1)
        assert np.allclose(mean_luminance(tiles), expected)

    def test_color_uses_luma_weights(self):
        tiles = np.zeros((1, 2, 2, 3), dtype=np.uint8)
        tiles[0, :, :, 1] = 255  # pure green
        assert mean_luminance(tiles)[0] == pytest.approx(0.587 * 255)

    def test_rejects_bad_ndim(self):
        with pytest.raises(ValidationError):
            mean_luminance(np.zeros((4, 4), dtype=np.uint8))


class TestTileFeatures:
    def test_grid1_equals_mean(self, tile_stacks_8x8):
        tiles, _ = tile_stacks_8x8
        feats = tile_features(tiles, grid=1)
        assert feats.shape == (tiles.shape[0], 1)
        assert np.allclose(feats[:, 0], mean_luminance(tiles))

    def test_grid2_shape(self, tile_stacks_8x8):
        tiles, _ = tile_stacks_8x8
        assert tile_features(tiles, grid=2).shape == (tiles.shape[0], 4)

    def test_block_means_correct(self):
        tile = np.zeros((1, 4, 4), dtype=np.uint8)
        tile[0, :2, :2] = 100  # top-left block only
        feats = tile_features(tile, grid=2)
        assert feats[0, 0] == 100.0
        assert (feats[0, 1:] == 0.0).all()

    def test_color_features_shape(self):
        tiles = np.zeros((2, 8, 8, 3), dtype=np.uint8)
        assert tile_features(tiles, grid=2).shape == (2, 12)

    def test_rejects_nondivisible_grid(self, tile_stacks_8x8):
        tiles, _ = tile_stacks_8x8
        with pytest.raises(ValidationError, match="divide"):
            tile_features(tiles, grid=3)

    def test_rejects_grid_zero(self, tile_stacks_8x8):
        tiles, _ = tile_stacks_8x8
        with pytest.raises(ValidationError):
            tile_features(tiles, grid=0)
