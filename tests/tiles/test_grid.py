"""Tests for TileGrid (Step 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TilingError
from repro.tiles.grid import TileGrid
from repro.tiles.permutation import random_permutation


class TestConstruction:
    def test_basic_properties(self):
        grid = TileGrid(64, 64, 8)
        assert grid.rows == 8
        assert grid.cols == 8
        assert grid.tile_count == 64
        assert grid.pixels_per_tile == 64

    def test_rectangular(self):
        grid = TileGrid(32, 64, 16)
        assert grid.rows == 2
        assert grid.cols == 4
        assert grid.tile_count == 8

    def test_rejects_nondivisible(self):
        with pytest.raises(TilingError, match="does not divide"):
            TileGrid(65, 64, 8)

    def test_for_image(self, portrait_64):
        grid = TileGrid.for_image(portrait_64, 16)
        assert grid.tile_count == 16

    def test_from_tile_count(self):
        grid = TileGrid.from_tile_count(512, 32)
        assert grid.tile_size == 16
        assert grid.tile_count == 1024

    def test_from_tile_count_rejects_nondivisor(self):
        with pytest.raises(TilingError):
            TileGrid.from_tile_count(100, 32)


class TestIndexing:
    def test_index_roundtrip(self):
        grid = TileGrid(64, 96, 16)
        for idx in range(grid.tile_count):
            row, col = grid.tile_position(idx)
            assert grid.tile_index(row, col) == idx

    def test_row_major_order(self):
        grid = TileGrid(32, 32, 16)
        assert grid.tile_index(0, 1) == 1
        assert grid.tile_index(1, 0) == 2

    def test_out_of_range_index(self):
        grid = TileGrid(32, 32, 16)
        with pytest.raises(TilingError):
            grid.tile_position(4)
        with pytest.raises(TilingError):
            grid.tile_index(2, 0)

    def test_tile_slice_extracts_matching_tile(self, portrait_64):
        grid = TileGrid.for_image(portrait_64, 8)
        tiles = grid.split(portrait_64)
        for idx in (0, 7, 35, 63):
            ys, xs = grid.tile_slice(idx)
            assert (portrait_64[ys, xs] == tiles[idx]).all()


class TestSplitAssemble:
    def test_split_shape(self, portrait_64):
        tiles = TileGrid.for_image(portrait_64, 8).split(portrait_64)
        assert tiles.shape == (64, 8, 8)
        assert tiles.dtype == np.uint8

    def test_assemble_inverts_split(self, portrait_64):
        grid = TileGrid.for_image(portrait_64, 8)
        assert (grid.assemble(grid.split(portrait_64)) == portrait_64).all()

    def test_color_split_assemble(self, rng):
        img = rng.integers(0, 256, size=(32, 32, 3)).astype(np.uint8)
        grid = TileGrid.for_image(img, 8)
        tiles = grid.split(img)
        assert tiles.shape == (16, 8, 8, 3)
        assert (grid.assemble(tiles) == img).all()

    def test_first_tile_is_top_left(self, portrait_64):
        grid = TileGrid.for_image(portrait_64, 16)
        tiles = grid.split(portrait_64)
        assert (tiles[0] == portrait_64[:16, :16]).all()

    def test_split_rejects_wrong_shape(self, portrait_64):
        grid = TileGrid(128, 128, 8)
        with pytest.raises(TilingError, match="does not match"):
            grid.split(portrait_64)

    def test_assemble_rejects_wrong_count(self):
        grid = TileGrid(32, 32, 8)
        with pytest.raises(TilingError, match="expected"):
            grid.assemble(np.zeros((15, 8, 8), dtype=np.uint8))

    def test_assemble_rejects_bad_ndim(self):
        grid = TileGrid(32, 32, 8)
        with pytest.raises(TilingError, match="3-D or 4-D"):
            grid.assemble(np.zeros((16, 64), dtype=np.uint8))


class TestRearrange:
    def test_identity_rearrangement(self, portrait_64):
        grid = TileGrid.for_image(portrait_64, 8)
        perm = np.arange(grid.tile_count)
        assert (grid.rearrange(portrait_64, perm) == portrait_64).all()

    def test_rearrange_is_permutation_of_tiles(self, portrait_64):
        grid = TileGrid.for_image(portrait_64, 8)
        perm = random_permutation(grid.tile_count, seed=3)
        out = grid.rearrange(portrait_64, perm)
        # Pixel multiset is preserved exactly.
        assert (np.sort(out.ravel()) == np.sort(portrait_64.ravel())).all()

    def test_rearrange_places_correct_tile(self, portrait_64):
        grid = TileGrid.for_image(portrait_64, 8)
        tiles = grid.split(portrait_64)
        perm = random_permutation(grid.tile_count, seed=9)
        out = grid.rearrange(portrait_64, perm)
        out_tiles = TileGrid.for_image(out, 8).split(out)
        for v in range(grid.tile_count):
            assert (out_tiles[v] == tiles[perm[v]]).all()

    def test_rearrange_rejects_bad_perm(self, portrait_64):
        grid = TileGrid.for_image(portrait_64, 8)
        with pytest.raises(Exception):
            grid.rearrange(portrait_64, np.zeros(grid.tile_count, dtype=np.intp))
