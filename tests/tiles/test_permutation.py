"""Tests for permutation algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.tiles.permutation import (
    apply_permutation,
    compose,
    identity_permutation,
    invert,
    permutation_from_pairs,
    random_permutation,
)


class TestIdentity:
    def test_is_arange(self):
        assert (identity_permutation(5) == np.arange(5)).all()

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            identity_permutation(0)


class TestRandom:
    def test_is_valid_permutation(self):
        p = random_permutation(50, seed=1)
        assert (np.sort(p) == np.arange(50)).all()

    def test_deterministic_per_seed(self):
        assert (random_permutation(20, seed=4) == random_permutation(20, seed=4)).all()

    def test_seeds_differ(self):
        assert (random_permutation(50, seed=1) != random_permutation(50, seed=2)).any()


class TestInvert:
    def test_inverse_relation(self):
        p = random_permutation(30, seed=7)
        q = invert(p)
        assert (q[p] == np.arange(30)).all()
        assert (p[q] == np.arange(30)).all()

    def test_double_inverse_is_identity_map(self):
        p = random_permutation(30, seed=8)
        assert (invert(invert(p)) == p).all()

    def test_identity_self_inverse(self):
        p = identity_permutation(10)
        assert (invert(p) == p).all()


class TestCompose:
    def test_identity_neutral(self):
        p = random_permutation(15, seed=2)
        e = identity_permutation(15)
        assert (compose(p, e) == p).all()
        assert (compose(e, p) == p).all()

    def test_compose_with_inverse_is_identity(self):
        p = random_permutation(15, seed=3)
        assert (compose(p, invert(p)) == identity_permutation(15)).all()

    def test_associative(self):
        a = random_permutation(12, seed=1)
        b = random_permutation(12, seed=2)
        c = random_permutation(12, seed=3)
        assert (compose(compose(a, b), c) == compose(a, compose(b, c))).all()

    def test_matches_sequential_application(self, rng):
        items = rng.integers(0, 100, size=12)
        a = random_permutation(12, seed=5)
        b = random_permutation(12, seed=6)
        two_steps = apply_permutation(apply_permutation(items, a), b)
        one_step = apply_permutation(items, compose(a, b))
        assert (two_steps == one_step).all()

    def test_size_mismatch(self):
        with pytest.raises(ValidationError):
            compose(identity_permutation(3), identity_permutation(4))


class TestApply:
    def test_reorders(self):
        items = np.array([10, 20, 30])
        assert (apply_permutation(items, np.array([2, 0, 1])) == [30, 10, 20]).all()

    def test_length_mismatch(self):
        with pytest.raises(ValidationError, match="length"):
            apply_permutation(np.arange(4), np.array([0, 1, 2]))


class TestFromPairs:
    def test_builds_permutation(self):
        p = permutation_from_pairs([(2, 0), (0, 1), (1, 2)], 3)
        assert (p == [2, 0, 1]).all()

    def test_order_independent(self):
        pairs = [(0, 2), (1, 0), (2, 1)]
        assert (
            permutation_from_pairs(pairs, 3)
            == permutation_from_pairs(list(reversed(pairs)), 3)
        ).all()

    def test_rejects_duplicate_target(self):
        with pytest.raises(ValidationError, match="assigned twice"):
            permutation_from_pairs([(0, 0), (1, 0), (2, 1)], 3)

    def test_rejects_duplicate_input(self):
        with pytest.raises(ValidationError, match="assigned twice"):
            permutation_from_pairs([(0, 0), (0, 1), (2, 2)], 3)

    def test_rejects_missing_position(self):
        with pytest.raises(ValidationError, match="never assigned"):
            permutation_from_pairs([(0, 0), (1, 1)], 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError, match="outside"):
            permutation_from_pairs([(0, 5)], 3)
