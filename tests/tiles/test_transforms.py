"""Tests for dihedral tile transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.tiles.transforms import (
    TRANSFORM_COUNT,
    all_orientations,
    apply_transform,
    apply_transforms_to_stack,
    compose_transforms,
    invert_transform,
)


@pytest.fixture()
def marker():
    return np.arange(16, dtype=np.uint8).reshape(4, 4)


class TestGroupStructure:
    def test_identity_is_code_zero(self, marker):
        assert (apply_transform(marker, 0) == marker).all()

    def test_eight_distinct_orientations(self, marker):
        images = {apply_transform(marker, k).tobytes() for k in range(TRANSFORM_COUNT)}
        assert len(images) == TRANSFORM_COUNT

    def test_inverse_relation(self, marker):
        for code in range(TRANSFORM_COUNT):
            inv = invert_transform(code)
            assert (
                apply_transform(apply_transform(marker, code), inv) == marker
            ).all()

    def test_composition_table_correct(self, marker):
        for a in range(TRANSFORM_COUNT):
            for b in range(TRANSFORM_COUNT):
                direct = apply_transform(apply_transform(marker, a), b)
                via_table = apply_transform(marker, compose_transforms(a, b))
                assert (direct == via_table).all()

    def test_rotation_subgroup_cyclic(self, marker):
        # Codes 0..3 are pure rotations: composing 1 four times = identity.
        code = 0
        for _ in range(4):
            code = compose_transforms(code, 1)
        assert code == 0

    def test_flips_are_involutions(self, marker):
        for code in (4, 5, 6, 7):
            assert invert_transform(code) == code

    def test_rotation_preserves_pixels(self, marker):
        for code in range(TRANSFORM_COUNT):
            out = apply_transform(marker, code)
            assert (np.sort(out.ravel()) == np.sort(marker.ravel())).all()

    def test_color_tile(self):
        tile = np.arange(48, dtype=np.uint8).reshape(4, 4, 3)
        out = apply_transform(tile, 1)  # rot90
        assert out.shape == (4, 4, 3)
        assert (out[:, :, 0] == np.rot90(tile[:, :, 0])).all()

    def test_rejects_bad_code(self, marker):
        with pytest.raises(ValidationError, match="0..7"):
            apply_transform(marker, 8)
        with pytest.raises(ValidationError):
            invert_transform(-1)


class TestStacks:
    def test_all_orientations_shape(self, tile_stacks_8x8):
        tiles, _ = tile_stacks_8x8
        variants = all_orientations(tiles)
        assert variants.shape == (8, *tiles.shape)

    def test_all_orientations_matches_single(self, tile_stacks_8x8):
        tiles, _ = tile_stacks_8x8
        variants = all_orientations(tiles)
        for code in range(TRANSFORM_COUNT):
            for u in (0, 13, 63):
                assert (variants[code, u] == apply_transform(tiles[u], code)).all()

    def test_rejects_rectangular_tiles(self):
        with pytest.raises(ValidationError, match="square"):
            all_orientations(np.zeros((2, 4, 6), dtype=np.uint8))

    def test_apply_transforms_to_stack(self, tile_stacks_8x8):
        tiles, _ = tile_stacks_8x8
        codes = np.arange(tiles.shape[0]) % TRANSFORM_COUNT
        out = apply_transforms_to_stack(tiles, codes)
        for u in (0, 5, 9):
            assert (out[u] == apply_transform(tiles[u], int(codes[u]))).all()

    def test_stack_codes_shape_checked(self, tile_stacks_8x8):
        tiles, _ = tile_stacks_8x8
        with pytest.raises(ValidationError, match="codes"):
            apply_transforms_to_stack(tiles, np.zeros(3, dtype=np.intp))
