"""Tests for the sampled 3-opt refinement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment import get_solver
from repro.cost.matrix import total_error
from repro.exceptions import ValidationError
from repro.localsearch.serial import local_search_serial
from repro.localsearch.threeopt import refine_three_opt


class TestCorrectness:
    def test_valid_permutation(self, small_error_matrix):
        result = refine_three_opt(small_error_matrix, seed=0)
        n = small_error_matrix.shape[0]
        assert (np.sort(result.permutation) == np.arange(n)).all()

    def test_total_consistent(self, small_error_matrix):
        result = refine_three_opt(small_error_matrix, seed=0)
        assert result.total == total_error(small_error_matrix, result.permutation)

    def test_never_increases_error(self, small_error_matrix):
        n = small_error_matrix.shape[0]
        start = total_error(small_error_matrix, np.arange(n))
        assert refine_three_opt(small_error_matrix, seed=0).total <= start

    def test_bounded_below_by_optimum(self, small_error_matrix):
        optimal = get_solver("scipy").solve(small_error_matrix).total
        assert refine_three_opt(small_error_matrix, seed=0).total >= optimal

    def test_refines_2opt_optimum(self, small_error_matrix):
        """Starting from a 2-opt optimum, 3-opt can only hold or improve."""
        two_opt = local_search_serial(small_error_matrix)
        refined = refine_three_opt(
            small_error_matrix, two_opt.permutation, seed=0
        )
        assert refined.total <= two_opt.total

    def test_escapes_2opt_on_random_matrices(self, rng):
        """Across rugged random instances, 3-opt must find improvements
        that 2-opt could not on at least some of them."""
        improved = 0
        for trial in range(6):
            m = rng.integers(0, 10_000, size=(40, 40)).astype(np.int64)
            two_opt = local_search_serial(m)
            refined = refine_three_opt(m, two_opt.permutation, seed=trial)
            assert refined.total <= two_opt.total
            if refined.total < two_opt.total:
                improved += 1
        assert improved >= 2

    def test_deterministic_per_seed(self, small_error_matrix):
        a = refine_three_opt(small_error_matrix, seed=3)
        b = refine_three_opt(small_error_matrix, seed=3)
        assert a.total == b.total
        assert (a.permutation == b.permutation).all()

    def test_monotone_totals(self, small_error_matrix):
        result = refine_three_opt(small_error_matrix, seed=0)
        totals = result.trace.totals
        assert all(x >= y for x, y in zip(totals, totals[1:]))

    def test_tiny_matrices(self):
        for n in (1, 2):
            m = np.arange(n * n, dtype=np.int64).reshape(n, n)
            result = refine_three_opt(m, seed=0)
            assert result.permutation.shape == (n,)

    def test_initial_not_mutated(self, small_error_matrix):
        init = np.arange(small_error_matrix.shape[0])
        before = init.copy()
        refine_three_opt(small_error_matrix, init, seed=0)
        assert (init == before).all()


class TestValidation:
    def test_bad_max_rounds(self, small_error_matrix):
        with pytest.raises(ValidationError, match="max_rounds"):
            refine_three_opt(small_error_matrix, max_rounds=0)

    def test_bad_patience(self, small_error_matrix):
        with pytest.raises(ValidationError, match="patience"):
            refine_three_opt(small_error_matrix, patience=0)

    def test_bad_samples(self, small_error_matrix):
        with pytest.raises(ValidationError, match="samples_per_round"):
            refine_three_opt(small_error_matrix, samples_per_round=0)
