"""Tests for the windowed local-search variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.matrix import total_error
from repro.exceptions import ValidationError
from repro.localsearch.serial import local_search_serial
from repro.localsearch.windowed import local_search_windowed
from repro.tiles.features import mean_luminance


@pytest.fixture()
def luminance(tile_stacks_8x8):
    tiles_in, _ = tile_stacks_8x8
    return mean_luminance(tiles_in)


class TestCorrectness:
    def test_valid_permutation(self, small_error_matrix, luminance):
        result = local_search_windowed(small_error_matrix, luminance, window=8)
        n = small_error_matrix.shape[0]
        assert (np.sort(result.permutation) == np.arange(n)).all()

    def test_total_consistent(self, small_error_matrix, luminance):
        result = local_search_windowed(small_error_matrix, luminance, window=8)
        assert result.total == total_error(small_error_matrix, result.permutation)

    def test_never_increases_error(self, small_error_matrix, luminance):
        n = small_error_matrix.shape[0]
        start = total_error(small_error_matrix, np.arange(n))
        result = local_search_windowed(small_error_matrix, luminance, window=4)
        assert result.total <= start

    def test_full_window_reaches_2opt_quality(self, small_error_matrix, luminance):
        n = small_error_matrix.shape[0]
        full = local_search_windowed(small_error_matrix, luminance, window=n)
        unrestricted = local_search_serial(small_error_matrix)
        assert full.total <= 1.02 * unrestricted.total

    def test_wider_window_not_worse(self, small_error_matrix, luminance):
        narrow = local_search_windowed(small_error_matrix, luminance, window=2)
        wide = local_search_windowed(small_error_matrix, luminance, window=32)
        assert wide.total <= narrow.total * 1.02

    def test_quality_close_to_full_search(self, small_error_matrix, luminance):
        """The premise of the ablation: small windows lose very little."""
        windowed = local_search_windowed(small_error_matrix, luminance, window=8)
        full = local_search_serial(small_error_matrix)
        assert windowed.total <= 1.05 * full.total

    def test_strategy_label(self, small_error_matrix, luminance):
        result = local_search_windowed(small_error_matrix, luminance, window=5)
        assert result.strategy == "windowed-5"
        assert result.meta["window"] == 5

    def test_terminates_with_clean_sweep(self, small_error_matrix, luminance):
        result = local_search_windowed(small_error_matrix, luminance, window=8)
        assert result.trace.swap_counts[-1] == 0


class TestValidation:
    def test_rejects_wrong_luminance_shape(self, small_error_matrix):
        with pytest.raises(ValidationError, match="tile_luminance"):
            local_search_windowed(small_error_matrix, np.zeros(5))

    def test_rejects_zero_window(self, small_error_matrix, luminance):
        with pytest.raises(ValidationError, match="window"):
            local_search_windowed(small_error_matrix, luminance, window=0)

    def test_rejects_bad_max_sweeps(self, small_error_matrix, luminance):
        with pytest.raises(ValidationError, match="max_sweeps"):
            local_search_windowed(
                small_error_matrix, luminance, window=4, max_sweeps=0
            )
