"""Tests for the simulated-annealing extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment import get_solver
from repro.cost.matrix import total_error
from repro.exceptions import ValidationError
from repro.localsearch.annealing import simulated_annealing
from repro.localsearch.serial import local_search_serial


class TestCorrectness:
    def test_returns_valid_permutation(self, small_error_matrix):
        result = simulated_annealing(small_error_matrix, seed=0)
        n = small_error_matrix.shape[0]
        assert (np.sort(result.permutation) == np.arange(n)).all()

    def test_total_consistent(self, small_error_matrix):
        result = simulated_annealing(small_error_matrix, seed=0)
        assert result.total == total_error(small_error_matrix, result.permutation)

    def test_bounded_below_by_optimum(self, small_error_matrix):
        optimal = get_solver("scipy").solve(small_error_matrix).total
        assert simulated_annealing(small_error_matrix, seed=0).total >= optimal

    def test_polished_output_is_2opt_optimal(self, small_error_matrix):
        result = simulated_annealing(small_error_matrix, seed=0, polish=True)
        m = small_error_matrix
        p = result.permutation
        s = m.shape[0]
        for u in range(s):
            for v in range(u + 1, s):
                assert m[p[u], u] + m[p[v], v] <= m[p[v], u] + m[p[u], v]

    def test_deterministic_per_seed(self, small_error_matrix):
        a = simulated_annealing(small_error_matrix, seed=7)
        b = simulated_annealing(small_error_matrix, seed=7)
        assert a.total == b.total
        assert (a.permutation == b.permutation).all()

    def test_seeds_can_differ(self, rng):
        m = rng.integers(0, 10_000, size=(40, 40)).astype(np.int64)
        totals = {
            simulated_annealing(m, seed=s, polish=False).total for s in range(4)
        }
        assert len(totals) > 1

    def test_s1(self):
        result = simulated_annealing(np.array([[5]], dtype=np.int64), seed=0)
        assert result.total == 5


class TestQuality:
    def test_beats_plain_local_search_on_random_in_aggregate(self, rng):
        """Annealing explores beyond the 2-opt basin: individual trials can
        land in a worse basin, but over several rugged random matrices it
        must win most of the time and in total."""
        wins = 0
        plain_sum = annealed_sum = 0
        for trial in range(5):
            m = rng.integers(0, 10_000, size=(48, 48)).astype(np.int64)
            plain = local_search_serial(m).total
            annealed = simulated_annealing(m, seed=trial).total
            plain_sum += plain
            annealed_sum += annealed
            if annealed < plain:
                wins += 1
        assert wins >= 3
        assert annealed_sum < plain_sum

    def test_closes_gap_on_real_matrix(self, small_error_matrix):
        optimal = get_solver("scipy").solve(small_error_matrix).total
        plain = local_search_serial(small_error_matrix).total
        annealed = simulated_annealing(small_error_matrix, seed=0).total
        assert annealed <= plain
        assert (annealed - optimal) <= (plain - optimal)


class TestValidation:
    def test_bad_cooling(self, small_error_matrix):
        with pytest.raises(ValidationError, match="cooling"):
            simulated_annealing(small_error_matrix, cooling=1.0)

    def test_bad_min_temperature(self, small_error_matrix):
        with pytest.raises(ValidationError, match="min_temperature"):
            simulated_annealing(small_error_matrix, min_temperature=0.0)

    def test_bad_steps(self, small_error_matrix):
        with pytest.raises(ValidationError, match="steps_per_temperature"):
            simulated_annealing(small_error_matrix, steps_per_temperature=0)

    def test_bad_initial_temperature(self, small_error_matrix):
        with pytest.raises(ValidationError, match="initial_temperature"):
            simulated_annealing(small_error_matrix, initial_temperature=-1.0)

    def test_meta_recorded(self, small_error_matrix):
        result = simulated_annealing(small_error_matrix, seed=0)
        assert result.meta["temperature_levels"] >= 1
        assert result.meta["polished"] is True
        assert result.strategy == "annealing"
