"""Tests for multi-start local search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment import get_solver
from repro.cost.matrix import total_error
from repro.exceptions import ValidationError
from repro.localsearch.restarts import multi_start_local_search
from repro.localsearch.serial import local_search_serial


def test_never_worse_than_identity_start(small_error_matrix):
    single = local_search_serial(small_error_matrix).total
    multi = multi_start_local_search(
        small_error_matrix, restarts=4, algorithm="serial"
    ).total
    assert multi <= single


def test_bounded_below_by_optimum(small_error_matrix):
    optimal = get_solver("scipy").solve(small_error_matrix).total
    assert multi_start_local_search(small_error_matrix).total >= optimal


def test_total_consistent(small_error_matrix):
    result = multi_start_local_search(small_error_matrix, restarts=3)
    assert result.total == total_error(small_error_matrix, result.permutation)


def test_attempt_totals_recorded(small_error_matrix):
    result = multi_start_local_search(small_error_matrix, restarts=3)
    assert len(result.meta["attempt_totals"]) == 3
    assert result.total == min(result.meta["attempt_totals"])


def test_deterministic(small_error_matrix):
    a = multi_start_local_search(small_error_matrix, restarts=3, seed=1)
    b = multi_start_local_search(small_error_matrix, restarts=3, seed=1)
    assert a.total == b.total


def test_restarts_one_with_identity_equals_plain(small_error_matrix):
    plain = local_search_serial(small_error_matrix)
    multi = multi_start_local_search(
        small_error_matrix, restarts=1, algorithm="serial"
    )
    assert multi.total == plain.total


@pytest.mark.parametrize("algorithm", ["serial", "parallel"])
def test_both_algorithms_supported(algorithm, small_error_matrix):
    result = multi_start_local_search(
        small_error_matrix, restarts=2, algorithm=algorithm
    )
    assert result.strategy == f"multistart-{algorithm}"


def test_rejects_bad_restarts(small_error_matrix):
    with pytest.raises(ValidationError, match="restarts"):
        multi_start_local_search(small_error_matrix, restarts=0)


def test_rejects_bad_algorithm(small_error_matrix):
    with pytest.raises(ValidationError, match="algorithm"):
        multi_start_local_search(small_error_matrix, algorithm="annealing")


def test_more_restarts_never_hurt(rng):
    m = rng.integers(0, 10_000, size=(40, 40)).astype(np.int64)
    few = multi_start_local_search(m, restarts=2, seed=0).total
    many = multi_start_local_search(m, restarts=6, seed=0).total
    assert many <= few
