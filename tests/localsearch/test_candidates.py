"""Candidate-restricted 2-opt sweeps (the sparse Step-3 consumers).

``local_search_serial`` / ``local_search_parallel`` accept a boolean
``candidates`` mask; a swap ``(u, v)`` is eligible only when both
resulting placements stay inside the mask.  An all-True mask must be a
no-op (bit-identical to the unrestricted search), a restricted run must
never place a tile outside its candidate rows unless it started there,
and pruning must stay bit-identical under restriction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost import error_matrix, sparse_error_matrix, total_error
from repro.exceptions import ValidationError
from repro.imaging import standard_image
from repro.localsearch.parallel import local_search_parallel
from repro.localsearch.serial import local_search_serial
from repro.tiles.grid import TileGrid


@pytest.fixture(scope="module")
def matrix():
    grid = TileGrid(64, 64, 8)
    return error_matrix(
        grid.split(standard_image("portrait", 64)),
        grid.split(standard_image("sailboat", 64)),
    )


@pytest.fixture(scope="module")
def sparse(request):
    grid = TileGrid(64, 64, 8)
    return sparse_error_matrix(
        grid.split(standard_image("portrait", 64)),
        grid.split(standard_image("sailboat", 64)),
        top_k=12,
        seed=2,
    )


ALL_RUNNERS = [
    ("serial", {"strategy": "first"}),
    ("serial", {"strategy": "best_row"}),
    ("parallel", {"backend": "vectorized"}),
    ("parallel", {"backend": "threads"}),
]


def _run(kind, matrix, candidates=None, initial=None, **kw):
    if kind == "serial":
        return local_search_serial(
            matrix, initial, candidates=candidates, **kw
        )
    return local_search_parallel(matrix, initial, candidates=candidates, **kw)


@pytest.mark.parametrize("kind,kw", ALL_RUNNERS)
def test_all_true_mask_is_bit_identical_to_unrestricted(kind, kw, matrix):
    free = _run(kind, matrix, **kw)
    masked = _run(
        kind, matrix, candidates=np.ones(matrix.shape, dtype=bool), **kw
    )
    np.testing.assert_array_equal(masked.permutation, free.permutation)
    assert masked.total == free.total
    assert masked.sweeps == free.sweeps


@pytest.mark.parametrize("kind,kw", ALL_RUNNERS)
def test_restricted_sweep_never_leaves_candidate_graph(kind, kw, matrix, sparse):
    """Start from a permutation inside the candidate graph; every swap
    keeps both endpoints inside it, so the final placement must too."""
    from repro.assignment import get_solver

    allowed = sparse.mask()
    initial = get_solver("greedy").solve_sparse(sparse).permutation
    start_inside = allowed[initial, np.arange(matrix.shape[0])]
    result = _run(kind, matrix, candidates=allowed, initial=initial, **kw)
    end_inside = allowed[result.permutation, np.arange(matrix.shape[0])]
    # Positions that started inside the graph must stay inside: eligible
    # swaps require both new placements to be shortlisted.
    assert (end_inside | ~start_inside).all()
    assert result.total == total_error(matrix, result.permutation)
    assert result.total <= total_error(matrix, initial)


@pytest.mark.parametrize("kind,kw", ALL_RUNNERS)
def test_pruned_and_unpruned_restricted_sweeps_agree(kind, kw, matrix, sparse):
    """Sweep pruning must stay exact under candidate restriction: swap
    eligibility is a pure function of the endpoint tiles, so the dirty-
    pair bookkeeping loses nothing."""
    allowed = sparse.mask()
    pruned = _run(kind, matrix, candidates=allowed, prune=True, **kw)
    unpruned = _run(kind, matrix, candidates=allowed, prune=False, **kw)
    np.testing.assert_array_equal(pruned.permutation, unpruned.permutation)
    assert pruned.total == unpruned.total
    assert pruned.sweeps == unpruned.sweeps


@pytest.mark.parametrize("kind", ["serial", "parallel"])
def test_bad_candidates_shape_rejected(kind, matrix):
    with pytest.raises(ValidationError):
        _run(kind, matrix, candidates=np.ones((3, 3), dtype=bool))


def test_gpusim_backend_rejects_candidates(matrix):
    with pytest.raises(ValidationError):
        local_search_parallel(
            matrix,
            backend="gpusim",
            candidates=np.ones(matrix.shape, dtype=bool),
        )


def test_restriction_only_reduces_reachable_improvements(matrix, sparse):
    """The restricted local optimum can never beat the unrestricted one
    from the same start (its neighbourhood is a subset)."""
    free = local_search_serial(matrix, strategy="first")
    restricted = local_search_serial(
        matrix, strategy="first", candidates=sparse.mask()
    )
    assert restricted.total >= free.total
