"""Tests for the serial approximation algorithm (paper Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.matrix import total_error
from repro.exceptions import ConvergenceError, ValidationError
from repro.localsearch.serial import local_search_serial
from repro.tiles.permutation import random_permutation


def _no_improving_pair(matrix: np.ndarray, perm: np.ndarray) -> bool:
    """Oracle: the permutation is 2-opt optimal (no improving swap exists)."""
    s = matrix.shape[0]
    for u in range(s):
        for v in range(u + 1, s):
            if (
                matrix[perm[u], u] + matrix[perm[v], v]
                > matrix[perm[v], u] + matrix[perm[u], v]
            ):
                return False
    return True


class TestAlgorithm1:
    def test_terminates_at_2opt_optimum(self, small_error_matrix):
        result = local_search_serial(small_error_matrix)
        assert _no_improving_pair(small_error_matrix, result.permutation)

    def test_never_increases_error(self, small_error_matrix):
        start = np.arange(small_error_matrix.shape[0])
        result = local_search_serial(small_error_matrix, start)
        assert result.total <= total_error(small_error_matrix, start)

    def test_total_matches_trace(self, small_error_matrix):
        result = local_search_serial(small_error_matrix)
        assert result.total == total_error(small_error_matrix, result.permutation)
        assert result.trace.totals[-1] == result.total

    def test_per_sweep_totals_monotone(self, small_error_matrix):
        result = local_search_serial(small_error_matrix)
        totals = result.trace.totals
        assert all(a >= b for a, b in zip(totals, totals[1:]))

    def test_final_sweep_has_zero_swaps(self, small_error_matrix):
        result = local_search_serial(small_error_matrix)
        assert result.trace.swap_counts[-1] == 0

    def test_already_optimal_input_one_sweep(self, small_error_matrix):
        first = local_search_serial(small_error_matrix)
        again = local_search_serial(small_error_matrix, first.permutation)
        assert again.sweeps == 1
        assert again.total == first.total

    def test_bounded_below_by_optimum(self, small_error_matrix):
        from repro.assignment import get_solver

        optimal = get_solver("scipy").solve(small_error_matrix).total
        assert local_search_serial(small_error_matrix).total >= optimal

    def test_custom_initial_permutation(self, small_error_matrix):
        s = small_error_matrix.shape[0]
        init = random_permutation(s, seed=2)
        result = local_search_serial(small_error_matrix, init)
        assert _no_improving_pair(small_error_matrix, result.permutation)

    def test_initial_not_mutated(self, small_error_matrix):
        s = small_error_matrix.shape[0]
        init = random_permutation(s, seed=2)
        before = init.copy()
        local_search_serial(small_error_matrix, init)
        assert (init == before).all()

    def test_s1_trivial(self):
        result = local_search_serial(np.array([[9]], dtype=np.int64))
        assert result.total == 9
        assert result.sweeps == 1

    def test_s2_swap_when_beneficial(self):
        # Identity costs 10+10; swapping costs 1+1.
        m = np.array([[10, 1], [1, 10]], dtype=np.int64)
        result = local_search_serial(m)
        assert result.total == 2
        assert result.permutation.tolist() == [1, 0]

    def test_max_sweeps_guard(self, small_error_matrix):
        with pytest.raises(ConvergenceError):
            # max_sweeps=1 but the matrix needs several sweeps from identity.
            local_search_serial(small_error_matrix, max_sweeps=1)

    def test_unknown_strategy(self, small_error_matrix):
        with pytest.raises(ValidationError, match="strategy"):
            local_search_serial(small_error_matrix, strategy="random")


class TestBestRowStrategy:
    def test_reaches_2opt_optimum(self, small_error_matrix):
        result = local_search_serial(small_error_matrix, strategy="best_row")
        assert _no_improving_pair(small_error_matrix, result.permutation)

    def test_quality_close_to_first(self, small_error_matrix):
        first = local_search_serial(small_error_matrix, strategy="first")
        best = local_search_serial(small_error_matrix, strategy="best_row")
        # Different visit orders may reach different local optima, but both
        # are 2-opt optimal; on natural matrices they land within a few %.
        assert abs(first.total - best.total) / first.total < 0.05

    def test_strategy_recorded(self, small_error_matrix):
        assert (
            local_search_serial(small_error_matrix, strategy="best_row").strategy
            == "best_row"
        )


class TestPaperClaim:
    def test_sweep_counts_small(self, small_error_matrix):
        """Paper Section IV-A: k stays in the single-to-low-double digits."""
        result = local_search_serial(small_error_matrix)
        assert result.sweeps <= 20
