"""Tests for local-search shared primitives."""

from __future__ import annotations

import numpy as np

from repro.cost.matrix import total_error
from repro.localsearch.base import ConvergenceTrace, swap_gains


class TestConvergenceTrace:
    def test_sweeps_counts_all_passes(self):
        trace = ConvergenceTrace(swap_counts=(5, 2, 0), totals=(100, 90, 90))
        assert trace.sweeps == 3
        assert trace.total_swaps == 7


class TestSwapGains:
    def test_gain_equals_error_delta(self, small_error_matrix, rng):
        """gain[j] must equal the exact drop in Eq. (2) caused by the swap."""
        s = small_error_matrix.shape[0]
        perm = rng.permutation(s).astype(np.intp)
        a = np.array([0, 5, 10], dtype=np.intp)
        b = np.array([1, 7, 63], dtype=np.intp)
        gains = swap_gains(small_error_matrix, perm, a, b)
        for j in range(a.size):
            swapped = perm.copy()
            swapped[a[j]], swapped[b[j]] = swapped[b[j]], swapped[a[j]]
            delta = total_error(small_error_matrix, perm) - total_error(
                small_error_matrix, swapped
            )
            assert gains[j] == delta

    def test_zero_gain_for_same_tile_pairing(self, small_error_matrix):
        s = small_error_matrix.shape[0]
        perm = np.arange(s, dtype=np.intp)
        a = np.array([3], dtype=np.intp)
        gains = swap_gains(small_error_matrix, perm, a, a)
        assert gains[0] == 0

    def test_empty_pairs(self, small_error_matrix):
        perm = np.arange(small_error_matrix.shape[0], dtype=np.intp)
        empty = np.array([], dtype=np.intp)
        assert swap_gains(small_error_matrix, perm, empty, empty).size == 0
