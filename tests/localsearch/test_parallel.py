"""Tests for the parallel approximation algorithm (paper Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coloring.groups import build_edge_groups
from repro.cost.matrix import total_error
from repro.exceptions import ValidationError
from repro.localsearch.parallel import local_search_parallel
from repro.localsearch.serial import local_search_serial
from repro.tiles.permutation import random_permutation


def _no_improving_pair(matrix: np.ndarray, perm: np.ndarray) -> bool:
    s = matrix.shape[0]
    for u in range(s):
        for v in range(u + 1, s):
            if (
                matrix[perm[u], u] + matrix[perm[v], v]
                > matrix[perm[v], u] + matrix[perm[u], v]
            ):
                return False
    return True


class TestAlgorithm2:
    def test_terminates_at_2opt_optimum(self, small_error_matrix):
        result = local_search_parallel(small_error_matrix)
        assert _no_improving_pair(small_error_matrix, result.permutation)

    def test_total_consistent(self, small_error_matrix):
        result = local_search_parallel(small_error_matrix)
        assert result.total == total_error(small_error_matrix, result.permutation)

    def test_monotone_totals(self, small_error_matrix):
        totals = local_search_parallel(small_error_matrix).trace.totals
        assert all(a >= b for a, b in zip(totals, totals[1:]))

    def test_bounded_below_by_optimum(self, small_error_matrix):
        from repro.assignment import get_solver

        optimal = get_solver("scipy").solve(small_error_matrix).total
        assert local_search_parallel(small_error_matrix).total >= optimal

    def test_error_close_to_serial(self, small_error_matrix):
        """Paper Table I: CPU-order and GPU-order totals differ slightly."""
        serial = local_search_serial(small_error_matrix).total
        parallel = local_search_parallel(small_error_matrix).total
        assert abs(serial - parallel) / serial < 0.05

    def test_kernel_launches_counted(self, small_error_matrix):
        result = local_search_parallel(small_error_matrix)
        s = small_error_matrix.shape[0]
        assert result.meta["kernel_launches"] == result.sweeps * s

    def test_custom_groups(self, small_error_matrix):
        s = small_error_matrix.shape[0]
        groups = build_edge_groups(s, order="round")
        result = local_search_parallel(small_error_matrix, groups=groups)
        assert _no_improving_pair(small_error_matrix, result.permutation)

    def test_group_size_mismatch(self, small_error_matrix):
        with pytest.raises(ValidationError, match="edge groups"):
            local_search_parallel(small_error_matrix, groups=build_edge_groups(8))

    def test_unknown_backend(self, small_error_matrix):
        with pytest.raises(ValidationError, match="backend"):
            local_search_parallel(small_error_matrix, backend="cuda")

    def test_s1(self):
        result = local_search_parallel(np.array([[3]], dtype=np.int64))
        assert result.total == 3

    def test_s2(self):
        m = np.array([[10, 1], [1, 10]], dtype=np.int64)
        assert local_search_parallel(m).total == 2

    def test_odd_s(self, rng):
        """Odd tile counts use n-colourings with byes; must still converge."""
        m = rng.integers(0, 1000, size=(9, 9)).astype(np.int64)
        result = local_search_parallel(m)
        assert _no_improving_pair(m, result.permutation)

    def test_initial_permutation_respected(self, small_error_matrix):
        s = small_error_matrix.shape[0]
        init = random_permutation(s, seed=4)
        result = local_search_parallel(small_error_matrix, initial=init)
        assert _no_improving_pair(small_error_matrix, result.permutation)
        assert result.total <= total_error(small_error_matrix, init)


class TestBackends:
    @pytest.mark.parametrize("backend", ["threads", "gpusim"])
    def test_backend_matches_vectorized(self, backend, small_error_matrix):
        """All backends implement the same class-synchronised semantics, so
        from the same start they commit exactly the same swaps."""
        base = local_search_parallel(small_error_matrix, backend="vectorized")
        other = local_search_parallel(small_error_matrix, backend=backend)
        assert other.total == base.total
        assert (other.permutation == base.permutation).all()
        assert other.sweeps == base.sweeps

    def test_threads_worker_counts(self, small_error_matrix):
        for workers in (1, 2, 8):
            result = local_search_parallel(
                small_error_matrix, backend="threads", workers=workers
            )
            assert _no_improving_pair(small_error_matrix, result.permutation)

    def test_strategy_label(self, small_error_matrix):
        assert (
            local_search_parallel(small_error_matrix, backend="gpusim").strategy
            == "parallel-gpusim"
        )


class TestSnapshotSemantics:
    def test_within_class_commits_are_independent(self):
        """Construct a class where two swaps are simultaneously improving;
        both must commit in one launch (lock-step semantics)."""
        # 4 tiles; identity is bad for (0,1) and (2,3) independently.
        m = np.array(
            [
                [9, 0, 9, 9],
                [0, 9, 9, 9],
                [9, 9, 9, 0],
                [9, 9, 0, 9],
            ],
            dtype=np.int64,
        )
        result = local_search_parallel(m)
        assert result.total == 0
        # One sweep of swapping + one clean sweep.
        assert result.sweeps == 2
