"""Differential regression: Algorithm 1 vs Algorithm 2 on pipeline instances.

The paper's serial 2-opt (Algorithm 1) and colour-class parallel 2-opt
(Algorithm 2) visit swap candidates in different orders, so they may end
at *different* pairwise-swap-optimal permutations in general.  On the
pinned pipeline instances below, however, both converge to the same
total error — and that agreement is a sensitive tripwire: a change to
sweep order, edge-group construction, tie-breaking, or the error matrix
itself will almost certainly break at least one instance.

The instances span three grid sizes (S = 16, 36, 64) and are built
exactly the way the pipeline builds them (histogram match + Step 1/2 via
:meth:`PhotomosaicGenerator.build_error_matrix`), so these tests also
guard the matrix construction upstream of the local search.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest

from repro.cost.matrix import total_error
from repro.imaging import standard_image
from repro.localsearch import local_search_parallel, local_search_serial
from repro.mosaic.config import MosaicConfig
from repro.mosaic.generator import PhotomosaicGenerator

# (image size, tile size, grid tiles S, converged total for BOTH algorithms)
INSTANCES = [
    (48, 8, 36, 156_759),
    (64, 8, 64, 274_490),
    (64, 16, 16, 274_624),
    (96, 16, 36, 606_004),
]

IDS = [f"size{size}-tile{tile}-S{s}" for size, tile, s, _ in INSTANCES]


@lru_cache(maxsize=None)
def _matrix(size: int, tile_size: int) -> np.ndarray:
    gen = PhotomosaicGenerator(MosaicConfig(tile_size=tile_size))
    inp = standard_image("portrait", size)
    tgt = standard_image("sailboat", size)
    _, matrix = gen.build_error_matrix(inp, tgt)
    matrix.setflags(write=False)
    return matrix


def _no_improving_pair(matrix: np.ndarray, perm: np.ndarray) -> bool:
    s = matrix.shape[0]
    for u in range(s):
        for v in range(u + 1, s):
            if (
                matrix[perm[u], u] + matrix[perm[v], v]
                > matrix[perm[v], u] + matrix[perm[u], v]
            ):
                return False
    return True


@pytest.mark.parametrize("size,tile,s,expected", INSTANCES, ids=IDS)
class TestSerialParallelDifferential:
    def test_same_total_error(self, size, tile, s, expected):
        matrix = _matrix(size, tile)
        assert matrix.shape[0] == s
        serial = local_search_serial(matrix)
        parallel = local_search_parallel(matrix)
        assert serial.total == parallel.total == expected

    def test_monotone_sweep_totals(self, size, tile, s, expected):
        matrix = _matrix(size, tile)
        for result in (local_search_serial(matrix), local_search_parallel(matrix)):
            totals = result.trace.totals
            assert all(a >= b for a, b in zip(totals, totals[1:])), result.strategy
            assert totals[-1] == result.total

    def test_both_reach_2opt_optimum(self, size, tile, s, expected):
        matrix = _matrix(size, tile)
        serial = local_search_serial(matrix)
        parallel = local_search_parallel(matrix)
        assert _no_improving_pair(matrix, serial.permutation)
        assert _no_improving_pair(matrix, parallel.permutation)

    def test_totals_consistent_with_permutations(self, size, tile, s, expected):
        matrix = _matrix(size, tile)
        serial = local_search_serial(matrix)
        parallel = local_search_parallel(matrix)
        assert total_error(matrix, serial.permutation) == serial.total
        assert total_error(matrix, parallel.permutation) == parallel.total


@pytest.mark.parametrize("size,tile,s,expected", INSTANCES, ids=IDS)
class TestPrunedVsUnpruned:
    """Active-pair pruning (:mod:`repro.accel.dirty`) must be invisible in
    the results: identical permutations *and* identical sweep-by-sweep
    traces, on every pinned instance (three grid sizes), while provably
    skipping work after the first sweep."""

    def test_parallel_bit_identical(self, size, tile, s, expected):
        matrix = _matrix(size, tile)
        pruned = local_search_parallel(matrix, prune=True)
        unpruned = local_search_parallel(matrix, prune=False)
        assert (pruned.permutation == unpruned.permutation).all()
        assert pruned.trace.totals == unpruned.trace.totals
        assert pruned.trace.swap_counts == unpruned.trace.swap_counts
        assert pruned.total == unpruned.total == expected

    def test_serial_best_row_bit_identical(self, size, tile, s, expected):
        matrix = _matrix(size, tile)
        pruned = local_search_serial(matrix, strategy="best_row", prune=True)
        unpruned = local_search_serial(matrix, strategy="best_row", prune=False)
        assert (pruned.permutation == unpruned.permutation).all()
        assert pruned.trace.totals == unpruned.trace.totals
        assert pruned.trace.swap_counts == unpruned.trace.swap_counts

    def test_pruning_actually_skips_pairs(self, size, tile, s, expected):
        """The trace assertion: pruning is doing work, not just agreeing.
        Candidate accounting must also be exhaustive — evaluated plus
        skipped equals the full ``S(S-1)/2`` candidates of every sweep."""
        matrix = _matrix(size, tile)
        for result in (
            local_search_parallel(matrix, prune=True),
            local_search_serial(matrix, strategy="best_row", prune=True),
        ):
            evaluated = result.meta["pairs_evaluated"]
            skipped = result.meta["pairs_skipped"]
            assert skipped > 0, result.strategy
            sweeps = len(result.trace.swap_counts)
            assert evaluated + skipped == sweeps * s * (s - 1) // 2

    def test_unpruned_meta_has_no_pruner_stats(self, size, tile, s, expected):
        matrix = _matrix(size, tile)
        result = local_search_serial(matrix, strategy="best_row", prune=False)
        assert "pairs_evaluated" not in result.meta


def test_divergence_is_possible_elsewhere():
    """Sanity check on the premise: the two algorithms are *not* equal on
    every instance (the S=16 instance at image size 32 diverges by a few
    units), so the pinned agreements above are meaningful, not vacuous."""
    gen = PhotomosaicGenerator(MosaicConfig(tile_size=8))
    _, matrix = gen.build_error_matrix(
        standard_image("portrait", 32), standard_image("sailboat", 32)
    )
    serial = local_search_serial(matrix)
    parallel = local_search_parallel(matrix)
    assert serial.total != parallel.total
    # ... yet both are 2-opt optimal and within the paper's ~5% band.
    assert _no_improving_pair(matrix, serial.permutation)
    assert _no_improving_pair(matrix, parallel.permutation)
    assert abs(serial.total - parallel.total) / serial.total < 0.05
