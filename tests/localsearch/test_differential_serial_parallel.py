"""Differential regression: Algorithm 1 vs Algorithm 2 on pipeline instances.

The paper's serial 2-opt (Algorithm 1) and colour-class parallel 2-opt
(Algorithm 2) visit swap candidates in different orders, so they may end
at *different* pairwise-swap-optimal permutations in general.  On the
pinned pipeline instances below, however, both converge to the same
total error — and that agreement is a sensitive tripwire: a change to
sweep order, edge-group construction, tie-breaking, or the error matrix
itself will almost certainly break at least one instance.

The instances span three grid sizes (S = 16, 36, 64) and are built
exactly the way the pipeline builds them (histogram match + Step 1/2 via
:meth:`PhotomosaicGenerator.build_error_matrix`), so these tests also
guard the matrix construction upstream of the local search.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest

from repro.cost.matrix import total_error
from repro.imaging import standard_image
from repro.localsearch import local_search_parallel, local_search_serial
from repro.mosaic.config import MosaicConfig
from repro.mosaic.generator import PhotomosaicGenerator

# (image size, tile size, grid tiles S, converged total for BOTH algorithms)
INSTANCES = [
    (48, 8, 36, 156_759),
    (64, 8, 64, 274_490),
    (64, 16, 16, 274_624),
    (96, 16, 36, 606_004),
]

IDS = [f"size{size}-tile{tile}-S{s}" for size, tile, s, _ in INSTANCES]


@lru_cache(maxsize=None)
def _matrix(size: int, tile_size: int) -> np.ndarray:
    gen = PhotomosaicGenerator(MosaicConfig(tile_size=tile_size))
    inp = standard_image("portrait", size)
    tgt = standard_image("sailboat", size)
    _, matrix = gen.build_error_matrix(inp, tgt)
    matrix.setflags(write=False)
    return matrix


def _no_improving_pair(matrix: np.ndarray, perm: np.ndarray) -> bool:
    s = matrix.shape[0]
    for u in range(s):
        for v in range(u + 1, s):
            if (
                matrix[perm[u], u] + matrix[perm[v], v]
                > matrix[perm[v], u] + matrix[perm[u], v]
            ):
                return False
    return True


@pytest.mark.parametrize("size,tile,s,expected", INSTANCES, ids=IDS)
class TestSerialParallelDifferential:
    def test_same_total_error(self, size, tile, s, expected):
        matrix = _matrix(size, tile)
        assert matrix.shape[0] == s
        serial = local_search_serial(matrix)
        parallel = local_search_parallel(matrix)
        assert serial.total == parallel.total == expected

    def test_monotone_sweep_totals(self, size, tile, s, expected):
        matrix = _matrix(size, tile)
        for result in (local_search_serial(matrix), local_search_parallel(matrix)):
            totals = result.trace.totals
            assert all(a >= b for a, b in zip(totals, totals[1:])), result.strategy
            assert totals[-1] == result.total

    def test_both_reach_2opt_optimum(self, size, tile, s, expected):
        matrix = _matrix(size, tile)
        serial = local_search_serial(matrix)
        parallel = local_search_parallel(matrix)
        assert _no_improving_pair(matrix, serial.permutation)
        assert _no_improving_pair(matrix, parallel.permutation)

    def test_totals_consistent_with_permutations(self, size, tile, s, expected):
        matrix = _matrix(size, tile)
        serial = local_search_serial(matrix)
        parallel = local_search_parallel(matrix)
        assert total_error(matrix, serial.permutation) == serial.total
        assert total_error(matrix, parallel.permutation) == parallel.total


def test_divergence_is_possible_elsewhere():
    """Sanity check on the premise: the two algorithms are *not* equal on
    every instance (the S=16 instance at image size 32 diverges by a few
    units), so the pinned agreements above are meaningful, not vacuous."""
    gen = PhotomosaicGenerator(MosaicConfig(tile_size=8))
    _, matrix = gen.build_error_matrix(
        standard_image("portrait", 32), standard_image("sailboat", 32)
    )
    serial = local_search_serial(matrix)
    parallel = local_search_parallel(matrix)
    assert serial.total != parallel.total
    # ... yet both are 2-opt optimal and within the paper's ~5% band.
    assert _no_improving_pair(matrix, serial.permutation)
    assert _no_improving_pair(matrix, parallel.permutation)
    assert abs(serial.total - parallel.total) / serial.total < 0.05
