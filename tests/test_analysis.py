"""Tests for the analysis package (displacement + convergence tools)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    convergence_curve,
    convergence_table,
    displacement_stats,
    tile_displacements,
)
from repro.exceptions import ValidationError
from repro.localsearch import local_search_serial
from repro.localsearch.base import ConvergenceTrace
from repro.tiles.grid import TileGrid
from repro.tiles.permutation import identity_permutation


class TestDisplacement:
    def test_identity_all_zero(self):
        grid = TileGrid(32, 32, 8)
        d = tile_displacements(grid, identity_permutation(grid.tile_count))
        assert (d == 0).all()

    def test_single_swap_distance(self):
        grid = TileGrid(32, 32, 8)  # 4x4 tiles
        perm = identity_permutation(16)
        perm[0], perm[1] = perm[1], perm[0]  # tiles 0 and 1 swap columns
        d = tile_displacements(grid, perm)
        assert d[0] == pytest.approx(1.0)
        assert d[1] == pytest.approx(1.0)
        assert (d[2:] == 0).all()

    def test_diagonal_move(self):
        grid = TileGrid(32, 32, 8)
        perm = identity_permutation(16)
        # Put tile 0 at the far corner (position 15) and vice versa.
        perm[0], perm[15] = perm[15], perm[0]
        d = tile_displacements(grid, perm)
        assert d[0] == pytest.approx(np.hypot(3, 3))

    def test_stats_identity(self):
        grid = TileGrid(64, 64, 8)
        stats = displacement_stats(grid, identity_permutation(grid.tile_count))
        assert stats.stationary_fraction == 1.0
        assert stats.mean == 0.0
        assert stats.moved_fraction == 0.0

    def test_histogram_sums_to_tiles(self):
        grid = TileGrid(64, 64, 8)
        rng = np.random.default_rng(0)
        perm = rng.permutation(grid.tile_count)
        stats = displacement_stats(grid, perm)
        assert sum(stats.displacement_histogram) == grid.tile_count

    def test_real_rearrangement_is_partly_local(self, small_error_matrix):
        """After histogram matching many tiles stay close to home."""
        grid = TileGrid(64, 64, 8)
        result = local_search_serial(small_error_matrix)
        stats = displacement_stats(grid, result.permutation)
        # Mean move well below the grid diameter.
        assert stats.mean < np.hypot(grid.rows, grid.cols) / 2


class TestConvergence:
    def test_curve_shapes(self, small_error_matrix):
        result = local_search_serial(small_error_matrix)
        curve = convergence_curve(result.trace)
        k = result.sweeps
        assert curve["sweep"].shape == (k,)
        assert curve["total"][-1] == result.total
        assert curve["swaps"][-1] == 0

    def test_improvement_with_start_total(self, small_error_matrix):
        n = small_error_matrix.shape[0]
        start = int(np.trace(small_error_matrix))
        result = local_search_serial(small_error_matrix)
        curve = convergence_curve(result.trace, start_total=start)
        assert curve["improvement"][0] == start - result.trace.totals[0]
        assert curve["improvement"].sum() == start - result.total

    def test_improvements_nonnegative(self, small_error_matrix):
        result = local_search_serial(small_error_matrix)
        curve = convergence_curve(result.trace)
        assert (curve["improvement"] >= 0).all()

    def test_table_renders(self, small_error_matrix):
        result = local_search_serial(small_error_matrix)
        text = convergence_table(result.trace, title="T")
        assert text.startswith("T")
        assert "total error" in text
        assert len(text.splitlines()) == 3 + result.sweeps

    def test_empty_trace_rejected(self):
        with pytest.raises(ValidationError, match="no sweeps"):
            convergence_curve(ConvergenceTrace((), ()))
