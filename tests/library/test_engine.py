"""End-to-end pipeline behaviour of :class:`LibraryMosaicEngine`."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.library import (
    LibraryConfig,
    LibraryIndex,
    LibraryMosaicEngine,
    LibraryMosaicResult,
    synthetic_library_images,
)
from repro.library.engine import PHASES
from repro.service.cache import ArtifactCache


def _config(**overrides):
    base = dict(tile_size=8, thumb_size=16, top_k=8, clusters=6)
    base.update(overrides)
    return LibraryConfig(**base)


class TestGenerate:
    def test_basic_result(self, library_index, target_64):
        result = LibraryMosaicEngine(_config()).generate(
            library_index, target_64, seed=1
        )
        assert isinstance(result, LibraryMosaicResult)
        assert result.image.shape == (64, 64)
        assert result.image.dtype == np.uint8
        assert result.choice.shape == (64,)  # 8x8 grid of 8px cells
        assert result.total_error > 0
        assert result.sweeps is None
        for phase in PHASES:
            assert result.timings.get(phase) >= 0

    def test_deterministic_for_seed(self, library_index, target_64):
        cfg = _config(repetition_penalty=1.0, assigner="ep", refine_iters=200)
        runs = [
            LibraryMosaicEngine(cfg).generate(library_index, target_64, seed=5)
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].choice, runs[1].choice)
        assert np.array_equal(runs[0].image, runs[1].image)
        assert runs[0].total_error == runs[1].total_error

    def test_out_size_scales_render(self, library_index, target_64):
        result = LibraryMosaicEngine(_config(out_size=256)).generate(
            library_index, target_64, seed=0
        )
        assert result.image.shape == (256, 256)

    def test_penalty_lowers_reuse_end_to_end(self, library_index, target_64):
        off = LibraryMosaicEngine(_config()).generate(
            library_index, target_64, seed=2
        )
        on = LibraryMosaicEngine(_config(repetition_penalty=2.0)).generate(
            library_index, target_64, seed=2
        )
        assert on.max_reuse < off.max_reuse
        assert on.meta["library"]["max_reuse"] == on.max_reuse

    def test_phase_events_in_order(self, library_index, target_64):
        events = []
        LibraryMosaicEngine(_config()).generate(
            library_index, target_64, seed=0,
            observer=lambda kind, payload: events.append((kind, payload)),
        )
        assert [p["phase"] for _, p in events] == list(PHASES)
        assert all(kind == "phase" for kind, _ in events)
        by_phase = {p["phase"]: p for _, p in events}
        assert by_phase["ingest"]["images"] == library_index.size
        assert by_phase["shortlist"]["cells"] == 64
        assert "total_cost" in by_phase["assign"]
        assert by_phase["render"]["height"] == 64
        assert all(p["seconds"] >= 0 for _, p in events)

    def test_observer_exception_aborts(self, library_index, target_64):
        def boom(kind, payload):
            raise RuntimeError("observer failed")

        with pytest.raises(RuntimeError, match="observer failed"):
            LibraryMosaicEngine(_config()).generate(
                library_index, target_64, seed=0, observer=boom
            )

    def test_meta_library_block(self, library_index, target_64):
        result = LibraryMosaicEngine(_config()).generate(
            library_index, target_64, seed=0
        )
        lib = result.meta["library"]
        assert lib["library_size"] == 120
        assert lib["ingest_images"] == 120
        assert lib["shortlist_k"] == 8
        assert lib["clusters"] == 6
        assert lib["assigner"] == "greedy"
        assert lib["backend"] == "numpy"
        assert "objective" in result.meta["assignment"]


class TestIngestSources:
    def test_prebuilt_index_passthrough(self, library_index):
        index, stats = LibraryMosaicEngine(_config()).ingest(library_index)
        assert index is library_index
        assert stats.images == library_index.size
        assert stats.hits == stats.misses == 0

    def test_npz_path(self, library_index, tmp_path):
        path = tmp_path / "lib.npz"
        library_index.save(path)
        index, stats = LibraryMosaicEngine(_config()).ingest(str(path))
        assert index.content_fingerprint() == library_index.content_fingerprint()
        assert stats.images == library_index.size

    def test_directory_with_cache_warm_hit_rate(self, tmp_path, target_64):
        from repro.library import write_synthetic_library

        libdir = tmp_path / "lib"
        write_synthetic_library(libdir, 25, size=16, seed=4)
        cache = ArtifactCache()
        engine = LibraryMosaicEngine(_config(), cache=cache)
        cold = engine.generate(str(libdir), target_64, seed=0)
        warm = engine.generate(str(libdir), target_64, seed=0)
        assert cold.meta["library"]["ingest_hit_rate"] == 0.0
        assert warm.meta["library"]["ingest_hit_rate"] >= 0.9
        assert np.array_equal(cold.image, warm.image)


class TestMismatchErrors:
    def test_tile_size_mismatch(self, library_images, target_64):
        index = LibraryIndex.from_images(
            library_images, tile_size=4, thumb_size=16
        )
        with pytest.raises(ValidationError, match="tile size"):
            LibraryMosaicEngine(_config()).generate(index, target_64)

    def test_sketch_grid_mismatch(self, library_images, target_64):
        index = LibraryIndex.from_images(
            library_images, tile_size=8, thumb_size=16, sketch_grid=4
        )
        with pytest.raises(ValidationError, match="sketch grid"):
            LibraryMosaicEngine(_config()).generate(index, target_64)

    def test_bad_target(self, library_index):
        with pytest.raises(ValidationError):
            LibraryMosaicEngine(_config()).generate(
                library_index, np.zeros((0, 0))
            )


class TestConfig:
    def test_defaults_valid(self):
        LibraryConfig()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"tile_size": 0},
            {"thumb_size": -1},
            {"sketch_grid": 0},
            {"top_k": 0},
            {"clusters": -2},
            {"cluster_probes": 0},
            {"repetition_penalty": -0.5},
            {"assigner": "simplex"},
            {"refine_iters": -1},
            {"color_adjust": "clahe"},
            {"out_size": 0},
            {"metric": "psnr"},
            {"array_backend": "tpu"},
        ],
    )
    def test_invalid_rejected(self, overrides):
        with pytest.raises(ValidationError):
            LibraryConfig(**overrides)

    def test_frozen(self):
        cfg = LibraryConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.tile_size = 4
