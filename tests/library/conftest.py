"""Shared fixtures for the tile-library tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.library import LibraryIndex, synthetic_library_images, synthetic_target


@pytest.fixture(scope="session")
def library_images() -> list[np.ndarray]:
    """120 deterministic 16x16 candidate images."""
    return synthetic_library_images(120, size=16, seed=7)


@pytest.fixture(scope="session")
def library_index(library_images) -> LibraryIndex:
    """Index over the synthetic library: match 8x8, render 16x16."""
    return LibraryIndex.from_images(
        library_images, tile_size=8, thumb_size=16, sketch_grid=2
    )


@pytest.fixture(scope="session")
def target_64() -> np.ndarray:
    return synthetic_target(64, seed=3)
