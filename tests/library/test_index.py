"""LibraryIndex construction, ingestion caching and persistence."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.library import (
    INDEX_FORMAT_VERSION,
    LibraryIndex,
    library_feature_key,
    scan_library_dir,
    synthetic_library_images,
    write_synthetic_library,
)
from repro.service.cache import ArtifactCache
from repro.service.diskcache import DiskCacheStore


class TestFromImages:
    def test_shapes_and_dtypes(self, library_index):
        idx = library_index
        assert idx.size == 120
        assert idx.tiles.shape == (120, 8, 8)
        assert idx.thumbs.shape == (120, 16, 16)
        assert idx.sketches.shape == (120, 4)
        assert idx.tiles.dtype == np.uint8
        assert idx.thumbs.dtype == np.uint8

    def test_means_equal_tile_means(self, library_index):
        # Block means of equal blocks average to the tile mean exactly.
        direct = library_index.tiles.reshape(120, -1).mean(
            axis=1, dtype=np.float64
        )
        assert np.allclose(library_index.means, direct)

    def test_distinct_fingerprints(self, library_index):
        assert len(set(library_index.fingerprints)) == library_index.size

    def test_deterministic(self, library_images):
        a = LibraryIndex.from_images(library_images, tile_size=8, thumb_size=16)
        b = LibraryIndex.from_images(library_images, tile_size=8, thumb_size=16)
        assert a.content_fingerprint() == b.content_fingerprint()

    def test_empty_library_rejected(self):
        with pytest.raises(ValidationError):
            LibraryIndex.from_images([])

    def test_mismatched_names_rejected(self, library_images):
        with pytest.raises(ValidationError):
            LibraryIndex.from_images(library_images[:4], names=("only-one",))


class TestScan:
    def test_sorted_and_filtered(self, tmp_path):
        write_synthetic_library(tmp_path, 5, size=8, seed=0)
        (tmp_path / "notes.txt").write_text("not an image")
        found = scan_library_dir(tmp_path)
        assert len(found) == 5
        assert found == sorted(found)
        assert all(p.endswith(".pgm") for p in found)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ValidationError):
            scan_library_dir(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(ValidationError):
            scan_library_dir(tmp_path)


class TestDirectoryIngestion:
    def test_cold_then_warm_hit_rate(self, tmp_path):
        libdir = tmp_path / "lib"
        write_synthetic_library(libdir, 30, size=16, seed=1)
        cache = DiskCacheStore(tmp_path / "cache")
        cold_idx, cold = LibraryIndex.from_directory(
            libdir, tile_size=8, thumb_size=16, cache=cache
        )
        warm_idx, warm = LibraryIndex.from_directory(
            libdir, tile_size=8, thumb_size=16, cache=cache
        )
        assert cold.hit_rate == 0.0
        # Acceptance bar is >= 90%; an unchanged library is a pure read.
        assert warm.hit_rate >= 0.9
        assert warm.hits == 30
        assert cold_idx.content_fingerprint() == warm_idx.content_fingerprint()

    def test_cacheless_ingestion_matches_cached(self, tmp_path):
        libdir = tmp_path / "lib"
        write_synthetic_library(libdir, 12, size=16, seed=2)
        plain, _ = LibraryIndex.from_directory(libdir, tile_size=8, thumb_size=16)
        cached, _ = LibraryIndex.from_directory(
            libdir, tile_size=8, thumb_size=16, cache=ArtifactCache()
        )
        assert plain.content_fingerprint() == cached.content_fingerprint()

    def test_changed_file_is_a_miss(self, tmp_path):
        libdir = tmp_path / "lib"
        paths = write_synthetic_library(libdir, 6, size=16, seed=3)
        cache = ArtifactCache()
        LibraryIndex.from_directory(libdir, tile_size=8, thumb_size=16, cache=cache)
        from repro.imaging import save_image

        save_image(paths[0], synthetic_library_images(1, size=16, seed=99)[0])
        _, stats = LibraryIndex.from_directory(
            libdir, tile_size=8, thumb_size=16, cache=cache
        )
        assert stats.misses == 1
        assert stats.hits == 5

    def test_feature_key_includes_version_and_params(self):
        keys = {
            library_feature_key("abc", 8, 16, 2),
            library_feature_key("abc", 8, 16, 4),
            library_feature_key("abc", 8, 32, 2),
            library_feature_key("abc", 16, 16, 2),
            library_feature_key("def", 8, 16, 2),
        }
        assert len(keys) == 5
        assert f"/v{INDEX_FORMAT_VERSION}" in library_feature_key("abc", 8, 16, 2)


class TestPersistence:
    def test_roundtrip(self, library_index, tmp_path):
        path = tmp_path / "index.npz"
        library_index.save(path)
        loaded = LibraryIndex.load(path)
        assert np.array_equal(loaded.tiles, library_index.tiles)
        assert np.array_equal(loaded.thumbs, library_index.thumbs)
        assert np.array_equal(loaded.sketches, library_index.sketches)
        assert loaded.names == library_index.names
        assert loaded.fingerprints == library_index.fingerprints
        assert loaded.sketch_grid == library_index.sketch_grid
        assert loaded.content_fingerprint() == library_index.content_fingerprint()

    def test_wrong_version_rejected(self, library_index, tmp_path):
        path = tmp_path / "index.npz"
        library_index.save(path)
        with np.load(path, allow_pickle=False) as data:
            header = json.loads(bytes(data["header"].tobytes()).decode())
            arrays = {k: data[k] for k in ("tiles", "thumbs", "sketches")}
        header["format_version"] = INDEX_FORMAT_VERSION + 1
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValidationError, match="format version"):
            LibraryIndex.load(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "index.npz"
        path.write_bytes(b"not an npz")
        with pytest.raises(ValidationError):
            LibraryIndex.load(path)

    def test_save_is_atomic_publish(self, library_index, tmp_path):
        path = tmp_path / "index.npz"
        library_index.save(path)
        library_index.save(path)  # overwrite in place
        assert not [p for p in os.listdir(tmp_path) if ".tmp." in p]
        LibraryIndex.load(path)
