"""Library assignment solvers: greedy penalty and EP refinement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SolverError, ValidationError
from repro.library import (
    EvolutionaryAssigner,
    GreedyPenaltyAssigner,
    LibraryAssigner,
    LibraryAssignment,
    available_assigners,
    get_assigner,
    pair_penalty,
    reuse_counts,
)


def _skewed_candidates(cells=64, k=6, library=40, seed=0):
    """A shortlist where one 'popular' tile is everyone's cheapest pick."""
    rng = np.random.default_rng(seed)
    costs = rng.integers(50, 200, size=(cells, k)).astype(np.int64)
    costs.sort(axis=1)
    indices = np.empty((cells, k), dtype=np.int64)
    for cell in range(cells):
        row = rng.permutation(library)[:k]
        row[0] = 0  # tile 0 is the universal best match
        indices[cell] = row
    costs[:, 0] = rng.integers(10, 30, size=cells)
    return indices, costs


class TestRegistry:
    def test_available(self):
        names = available_assigners()
        assert "greedy" in names and "ep" in names
        assert names == tuple(sorted(names))

    def test_get(self):
        assert isinstance(get_assigner("greedy"), GreedyPenaltyAssigner)
        assert isinstance(get_assigner("ep"), EvolutionaryAssigner)

    def test_unknown_name(self):
        with pytest.raises(SolverError, match="unknown library assigner"):
            get_assigner("simplex")

    def test_base_name_unregistrable(self):
        from repro.library.assign import register_assigner

        with pytest.raises(ValidationError):
            register_assigner(LibraryAssigner)


class TestGreedy:
    def test_zero_penalty_picks_best_candidate(self):
        indices, costs = _skewed_candidates()
        result = GreedyPenaltyAssigner().solve(indices, costs)
        assert np.array_equal(result.choice, indices[:, 0])
        assert result.total_cost == int(costs[:, 0].sum())
        assert result.meta["objective"] == result.total_cost

    def test_penalty_lowers_max_reuse(self):
        """The acceptance-criteria pin: penalty on vs off."""
        indices, costs = _skewed_candidates()
        off = GreedyPenaltyAssigner().solve(indices, costs)
        on = GreedyPenaltyAssigner().solve(
            indices, costs, repetition_penalty=2.0
        )
        assert off.max_reuse == 64  # everyone piles onto tile 0
        assert on.max_reuse < off.max_reuse
        assert on.unique_tiles > off.unique_tiles
        # Spreading out costs raw match quality; that trade is the point.
        assert on.total_cost >= off.total_cost

    def test_penalty_monotone_in_lambda(self):
        indices, costs = _skewed_candidates(seed=3)
        reuse = [
            GreedyPenaltyAssigner()
            .solve(indices, costs, repetition_penalty=lam)
            .max_reuse
            for lam in (0.0, 0.5, 4.0)
        ]
        assert reuse[0] >= reuse[1] >= reuse[2]

    def test_deterministic(self):
        indices, costs = _skewed_candidates(seed=9)
        a = GreedyPenaltyAssigner().solve(indices, costs, repetition_penalty=1.0)
        b = GreedyPenaltyAssigner().solve(indices, costs, repetition_penalty=1.0)
        assert np.array_equal(a.choice, b.choice)
        assert a.meta == b.meta

    def test_meta_consistency(self):
        indices, costs = _skewed_candidates(seed=4)
        result = GreedyPenaltyAssigner().solve(
            indices, costs, repetition_penalty=1.5
        )
        counts = reuse_counts(result.choice)
        assert result.meta["max_reuse"] == int(counts.max()) == result.max_reuse
        assert result.meta["unique_tiles"] == result.unique_tiles
        step = int(round(1.5 * result.meta["penalty_unit"]))
        assert (
            result.meta["objective"]
            == result.total_cost + step * pair_penalty(counts)
        )

    def test_invalid_candidates(self):
        with pytest.raises(ValidationError):
            GreedyPenaltyAssigner().solve(
                np.zeros((4, 2), dtype=np.int64), np.zeros((4, 3), dtype=np.int64)
            )
        with pytest.raises(ValidationError):
            GreedyPenaltyAssigner().solve(
                np.zeros((4, 0), dtype=np.int64), np.zeros((4, 0), dtype=np.int64)
            )


class TestEvolutionary:
    def test_no_refinement_equals_greedy(self):
        indices, costs = _skewed_candidates(seed=1)
        greedy = GreedyPenaltyAssigner().solve(
            indices, costs, repetition_penalty=1.0
        )
        ep = EvolutionaryAssigner().solve(
            indices, costs, repetition_penalty=1.0, refine_iters=0, seed=0
        )
        assert np.array_equal(ep.choice, greedy.choice)
        assert ep.meta["iterations"] == 0

    def test_refinement_never_worsens_objective(self):
        indices, costs = _skewed_candidates(seed=2)
        greedy = GreedyPenaltyAssigner().solve(
            indices, costs, repetition_penalty=1.0
        )
        ep = EvolutionaryAssigner().solve(
            indices, costs, repetition_penalty=1.0, refine_iters=500, seed=42
        )
        assert ep.meta["objective"] <= greedy.meta["objective"]
        assert ep.meta["accepted_moves"] >= 0

    def test_refinement_improves_on_skewed_instance(self):
        """Greedy's commit order leaves slack EP must find here."""
        indices, costs = _skewed_candidates(cells=128, seed=6)
        greedy = GreedyPenaltyAssigner().solve(
            indices, costs, repetition_penalty=2.0
        )
        ep = EvolutionaryAssigner().solve(
            indices, costs, repetition_penalty=2.0, refine_iters=2000, seed=7
        )
        assert ep.meta["objective"] < greedy.meta["objective"]
        assert ep.meta["accepted_moves"] > 0

    def test_seeded_determinism(self):
        indices, costs = _skewed_candidates(seed=8)
        runs = [
            EvolutionaryAssigner().solve(
                indices, costs, repetition_penalty=1.0, refine_iters=300, seed=5
            )
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].choice, runs[1].choice)
        assert runs[0].meta == runs[1].meta

    def test_incremental_objective_matches_recomputation(self):
        """The O(k) move deltas must add up to the true objective."""
        indices, costs = _skewed_candidates(cells=96, seed=10)
        result = EvolutionaryAssigner().solve(
            indices, costs, repetition_penalty=1.0, refine_iters=1000, seed=3
        )
        # Recompute total cost from scratch.
        total = 0
        for cell in range(indices.shape[0]):
            slot = int(np.argmax(indices[cell] == result.choice[cell]))
            assert indices[cell, slot] == result.choice[cell]
            total += int(costs[cell, slot])
        assert total == result.total_cost
        step = int(round(1.0 * result.meta["penalty_unit"]))
        assert (
            result.meta["objective"]
            == total + step * pair_penalty(reuse_counts(result.choice))
        )


class TestAssignmentValue:
    def test_choice_must_be_1d(self):
        with pytest.raises(ValidationError):
            LibraryAssignment(np.zeros((2, 2)), 0)

    def test_properties(self):
        a = LibraryAssignment(np.array([3, 3, 5, 7]), 10)
        assert a.max_reuse == 2
        assert a.unique_tiles == 3

    def test_pair_penalty(self):
        assert pair_penalty(np.array([1, 1, 1])) == 0
        assert pair_penalty(np.array([4])) == 6
        assert pair_penalty(np.array([2, 3])) == 1 + 3
