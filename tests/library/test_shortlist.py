"""k-means sketch clustering and candidate shortlisting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost import get_metric
from repro.exceptions import ValidationError
from repro.library import CandidateSet, ClusterShortlister, kmeans
from repro.tiles.features import tile_features
from repro.tiles.grid import TileGrid


class TestKmeans:
    def test_deterministic_for_seed(self, library_index):
        a = kmeans(library_index.sketches, 8, seed=11)
        b = kmeans(library_index.sketches, 8, seed=11)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_labels_cover_all_clusters(self, library_index):
        _, labels = kmeans(library_index.sketches, 10, seed=0)
        assert set(np.unique(labels)) == set(range(10))

    def test_k_equals_n_is_identity_partition(self):
        points = np.arange(12, dtype=np.float64).reshape(6, 2)
        centers, labels = kmeans(points, 6, seed=0)
        assert np.unique(labels).size == 6
        assert np.array_equal(
            np.sort(centers, axis=0), np.sort(points, axis=0)
        )

    def test_duplicate_points_keep_all_clusters_occupied(self):
        # All-identical points force the empty-cluster reseed path.
        points = np.ones((20, 3))
        _, labels = kmeans(points, 4, seed=5)
        assert np.unique(labels).size == 4

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            kmeans(np.empty((0, 2)), 1)
        with pytest.raises(ValidationError):
            kmeans(np.ones((4, 2)), 0)
        with pytest.raises(ValidationError):
            kmeans(np.ones((4, 2)), 5)
        with pytest.raises(ValidationError):
            kmeans(np.ones(4), 2)


def _target_cells(target_64, tile_size=8, grid=2):
    cells = TileGrid.for_image(target_64, tile_size).split(target_64)
    return cells, tile_features(cells, grid=grid)


@pytest.fixture(scope="module")
def shortlister(library_index):
    metric = get_metric("sad")
    return ClusterShortlister(
        library_index.sketches,
        metric.prepare(library_index.tiles),
        metric,
        clusters=8,
        probes=2,
        seed=13,
    )


class TestShortlister:
    def test_shapes_and_row_order(self, shortlister, target_64):
        cells, sketches = _target_cells(target_64)
        cand = shortlister.shortlist(cells, sketches, top_k=10)
        assert isinstance(cand, CandidateSet)
        assert cand.cells == cells.shape[0]
        assert cand.top_k == 10
        assert np.all(np.diff(cand.costs, axis=1) >= 0)  # best-first rows
        assert cand.meta["clusters"] == 8
        assert cand.meta["library_size"] == 120
        assert cand.meta["scanned_mean"] >= 10

    def test_costs_are_exact(self, shortlister, library_index, target_64):
        """Shortlist costs must equal the brute-force metric values."""
        cells, sketches = _target_cells(target_64)
        cand = shortlister.shortlist(cells, sketches, top_k=6)
        metric = get_metric("sad")
        tf = metric.prepare(cells)
        lf = metric.prepare(library_index.tiles)
        for cell in range(0, cand.cells, 7):
            row = np.asarray(metric.pairwise(tf[cell : cell + 1], lf))[0]
            assert np.array_equal(cand.costs[cell], row[cand.indices[cell]])

    def test_slot0_is_pool_best_and_usually_global_best(
        self, shortlister, library_index, target_64
    ):
        """With probing, slot 0 should almost always be the true nearest."""
        cells, sketches = _target_cells(target_64)
        cand = shortlister.shortlist(cells, sketches, top_k=4)
        metric = get_metric("sad")
        tf = metric.prepare(cells)
        lf = metric.prepare(library_index.tiles)
        full = np.asarray(metric.pairwise(tf, lf))
        exact_best = full.min(axis=1)
        agreement = np.mean(cand.costs[:, 0] == exact_best)
        assert agreement >= 0.8

    def test_single_cluster_matches_brute_force_exactly(
        self, library_index, target_64
    ):
        """clusters=1 means no pruning: top-k must equal brute force."""
        metric = get_metric("sad")
        lf = metric.prepare(library_index.tiles)
        sl = ClusterShortlister(
            library_index.sketches, lf, metric, clusters=1, seed=0
        )
        cells, sketches = _target_cells(target_64)
        cand = sl.shortlist(cells, sketches, top_k=5)
        tf = metric.prepare(cells)
        full = np.asarray(metric.pairwise(tf, lf))
        brute = np.sort(full, axis=1)[:, :5]
        assert np.array_equal(np.sort(cand.costs, axis=1), brute)

    def test_deterministic(self, library_index, target_64):
        metric = get_metric("sad")
        lf = metric.prepare(library_index.tiles)
        cells, sketches = _target_cells(target_64)
        runs = [
            ClusterShortlister(
                library_index.sketches, lf, metric, clusters=6, seed=3
            ).shortlist(cells, sketches, top_k=8)
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].indices, runs[1].indices)
        assert np.array_equal(runs[0].costs, runs[1].costs)

    def test_top_k_clamped_to_library_size(self, library_index, target_64):
        metric = get_metric("sad")
        lf = metric.prepare(library_index.tiles)
        sl = ClusterShortlister(library_index.sketches, lf, metric, seed=0)
        cells, sketches = _target_cells(target_64)
        cand = sl.shortlist(cells, sketches, top_k=10_000)
        assert cand.top_k == library_index.size

    def test_pool_widens_to_satisfy_top_k(self, library_index, target_64):
        """Even with tiny clusters, every row must fill top_k candidates."""
        metric = get_metric("sad")
        lf = metric.prepare(library_index.tiles)
        sl = ClusterShortlister(
            library_index.sketches, lf, metric, clusters=40, probes=1, seed=1
        )
        cells, sketches = _target_cells(target_64)
        cand = sl.shortlist(cells, sketches, top_k=30)
        assert cand.top_k == 30
        # A valid row has distinct candidate indices.
        for row in cand.indices:
            assert np.unique(row).size == 30

    def test_invalid_inputs(self, library_index, target_64):
        metric = get_metric("sad")
        lf = metric.prepare(library_index.tiles)
        with pytest.raises(ValidationError):
            ClusterShortlister(np.empty((0, 4)), lf, metric)
        with pytest.raises(ValidationError):
            ClusterShortlister(library_index.sketches, lf[:10], metric)
        sl = ClusterShortlister(library_index.sketches, lf, metric, seed=0)
        cells, sketches = _target_cells(target_64)
        with pytest.raises(ValidationError):
            sl.shortlist(cells, sketches, top_k=0)
        with pytest.raises(ValidationError):
            sl.shortlist(cells, sketches[:3], top_k=4)

    def test_candidate_set_validation(self):
        with pytest.raises(ValidationError):
            CandidateSet(np.zeros((4, 3), dtype=np.int64), np.zeros((4, 2), dtype=np.int64))
