"""Rendering at arbitrary resolution and per-tile colour adjustment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.library import (
    adjust_tiles,
    cell_stats,
    render_mosaic,
    resolve_cell_size,
)


class TestResolveCellSize:
    def test_none_keeps_match_resolution(self):
        assert resolve_cell_size(8, 8, 8, None) == 8

    def test_scales_by_longer_side(self):
        assert resolve_cell_size(8, 8, 8, 256) == 32
        assert resolve_cell_size(8, 4, 8, 256) == 32  # rows dominate
        assert resolve_cell_size(4, 8, 8, 256) == 32  # cols dominate

    def test_floors_inexact_requests(self):
        assert resolve_cell_size(8, 8, 8, 250) == 31

    def test_too_small_rejected(self):
        with pytest.raises(ValidationError):
            resolve_cell_size(64, 64, 8, 32)


class TestCellStats:
    def test_values(self):
        cells = np.stack(
            [np.zeros((4, 4)), np.full((4, 4), 10.0), np.arange(16.0).reshape(4, 4)]
        )
        means, stds = cell_stats(cells)
        assert np.allclose(means, [0.0, 10.0, 7.5])
        assert stds[0] == stds[1] == 0.0
        assert stds[2] > 0


class TestAdjustTiles:
    def test_none_is_passthrough(self):
        tiles = np.arange(32, dtype=np.uint8).reshape(2, 4, 4)
        out = adjust_tiles(tiles, np.zeros(2), np.zeros(2), "none")
        assert out.dtype == np.uint8
        assert np.array_equal(out, tiles)

    def test_histogram_matches_means(self):
        tiles = np.full((2, 4, 4), 100, dtype=np.uint8)
        out = adjust_tiles(
            tiles, np.array([50.0, 180.0]), np.ones(2), "histogram"
        )
        assert np.all(out[0] == 50)
        assert np.all(out[1] == 180)

    def test_gain_offset_matches_mean_and_std(self):
        rng = np.random.default_rng(0)
        tiles = rng.integers(60, 200, size=(3, 8, 8)).astype(np.uint8)
        t_means = np.array([80.0, 128.0, 160.0])
        t_stds = np.array([10.0, 30.0, 20.0])
        out = adjust_tiles(tiles, t_means, t_stds, "gain_offset")
        means, stds = cell_stats(out)
        assert np.allclose(means, t_means, atol=1.5)
        assert np.allclose(stds, t_stds, atol=2.5)

    def test_gain_is_clamped_for_flat_tiles(self):
        flat = np.full((1, 4, 4), 128, dtype=np.uint8)
        out = adjust_tiles(flat, np.array([128.0]), np.array([100.0]), "gain_offset")
        # A flat tile stays flat: there is no structure to amplify.
        assert np.all(out == 128)

    def test_clips_to_uint8_range(self):
        tiles = np.full((1, 4, 4), 250, dtype=np.uint8)
        out = adjust_tiles(tiles, np.array([300.0]), np.ones(1), "histogram")
        assert out.dtype == np.uint8
        assert np.all(out == 255)

    def test_invalid_mode_and_shapes(self):
        tiles = np.zeros((2, 4, 4), dtype=np.uint8)
        with pytest.raises(ValidationError):
            adjust_tiles(tiles, np.zeros(2), np.zeros(2), "clahe")
        with pytest.raises(ValidationError):
            adjust_tiles(tiles, np.zeros(3), np.zeros(2), "histogram")
        with pytest.raises(ValidationError):
            adjust_tiles(np.zeros((4, 4)), np.zeros(1), np.zeros(1), "none")


class TestRenderMosaic:
    def _thumbs(self, count=4, size=8):
        # Tile t is a flat patch of intensity 40*t — easy to locate.
        return np.stack(
            [np.full((size, size), 40 * t, dtype=np.uint8) for t in range(count)]
        )

    def test_native_resolution(self):
        thumbs = self._thumbs()
        choice = np.array([0, 1, 2, 3])
        image = render_mosaic(thumbs, choice, 2, 2, 8)
        assert image.shape == (16, 16)
        assert np.all(image[:8, :8] == 0)
        assert np.all(image[:8, 8:] == 40)
        assert np.all(image[8:, :8] == 80)
        assert np.all(image[8:, 8:] == 120)

    def test_upscaled_resolution(self):
        thumbs = self._thumbs()
        choice = np.array([3, 2, 1, 0])
        image = render_mosaic(thumbs, choice, 2, 2, 32)
        assert image.shape == (64, 64)
        assert np.all(image[:32, :32] == 120)
        assert np.all(image[32:, 32:] == 0)

    def test_downscaled_resolution(self):
        thumbs = self._thumbs(size=16)
        image = render_mosaic(thumbs, np.array([1, 1, 1, 1]), 2, 2, 4)
        assert image.shape == (8, 8)
        assert np.all(image == 40)

    def test_color_adjust_threads_through(self):
        thumbs = self._thumbs()
        choice = np.array([1, 1, 1, 1])
        image = render_mosaic(
            thumbs,
            choice,
            2,
            2,
            8,
            target_means=np.array([10.0, 60.0, 110.0, 160.0]),
            target_stds=np.ones(4),
            color_adjust="histogram",
        )
        assert np.all(image[:8, :8] == 10)
        assert np.all(image[8:, 8:] == 160)

    def test_validation(self):
        thumbs = self._thumbs()
        with pytest.raises(ValidationError):
            render_mosaic(thumbs, np.array([0, 1]), 2, 2, 8)
        with pytest.raises(ValidationError):
            render_mosaic(thumbs, np.array([0, 1, 2, 9]), 2, 2, 8)
        with pytest.raises(ValidationError):
            render_mosaic(
                thumbs, np.array([0, 1, 2, 3]), 2, 2, 8, color_adjust="histogram"
            )
