"""Smoke tests: every example script must run end to end.

Examples are part of the public deliverable; these tests execute each one
(at reduced sizes where the script accepts arguments) so API drift breaks
CI instead of users.  Output directories are redirected into tmp_path.
"""

from __future__ import annotations

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def _run_example(monkeypatch, tmp_path, name: str, argv: list[str]) -> None:
    script = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    module_vars = runpy.run_path(script, run_name="__not_main__")
    # Redirect the example's output directory into the test sandbox.
    if "OUT_DIR" in module_vars:
        out_dir = str(tmp_path / "out")
        monkeypatch.setattr(sys, "argv", [script, *argv])
        # Re-execute with OUT_DIR patched by injecting through the module
        # globals: simplest is to run main() from the loaded namespace.
        module_vars["OUT_DIR"] = out_dir
        for key, value in module_vars.items():
            if callable(value) and getattr(value, "__name__", "") == "main":
                # Patch the module-level OUT_DIR captured by the function.
                value.__globals__["OUT_DIR"] = out_dir
                value()
                return
        raise AssertionError(f"{name} has no main()")
    monkeypatch.setattr(sys, "argv", [script, *argv])
    module_vars["main"]()


@pytest.mark.parametrize(
    "name,argv",
    [
        ("compare_algorithms.py", ["--size", "128", "--tiles", "8,16"]),
        ("video_mosaic.py", ["--frames", "2", "--size", "64", "--tiles", "8"]),
    ],
)
def test_parameterised_examples(monkeypatch, tmp_path, name, argv):
    _run_example(monkeypatch, tmp_path, name, argv)


def test_quickstart(monkeypatch, tmp_path, capsys):
    _run_example(monkeypatch, tmp_path, "quickstart.py", [])
    out = capsys.readouterr().out
    assert "total error" in out
    assert (tmp_path / "out" / "mosaic.png").exists()


def test_gallery(monkeypatch, tmp_path, capsys):
    _run_example(monkeypatch, tmp_path, "gallery.py", [])
    out = capsys.readouterr().out
    assert "airplane" in out
    assert len(list((tmp_path / "out").glob("*_mosaic.png"))) == 3


def test_beyond_local_optima(monkeypatch, tmp_path, capsys):
    _run_example(monkeypatch, tmp_path, "beyond_local_optima.py", [])
    out = capsys.readouterr().out
    assert "exact matching" in out
    assert "0.000%" in out


def test_gpu_simulation(monkeypatch, tmp_path, capsys):
    _run_example(monkeypatch, tmp_path, "gpu_simulation.py", [])
    out = capsys.readouterr().out
    assert "Performance-model predictions" in out
    assert "Simulated device timeline" in out


def test_rearrangement_analysis(monkeypatch, tmp_path, capsys):
    _run_example(monkeypatch, tmp_path, "rearrangement_analysis.py", [])
    out = capsys.readouterr().out
    assert "convergence" in out
    assert "distance histogram" in out


def test_histogram_adjustment(monkeypatch, tmp_path, capsys):
    _run_example(monkeypatch, tmp_path, "histogram_adjustment.py", [])
    out = capsys.readouterr().out
    assert "with adjustment" in out


def test_color_mosaic(monkeypatch, tmp_path, capsys):
    _run_example(monkeypatch, tmp_path, "color_mosaic.py", [])
    assert "colour" in capsys.readouterr().out


def test_tile_transforms(monkeypatch, tmp_path, capsys):
    _run_example(monkeypatch, tmp_path, "tile_transforms.py", [])
    out = capsys.readouterr().out
    assert "lower error" in out
    assert "unchanged" in out


def test_database_mosaic(monkeypatch, tmp_path, capsys):
    _run_example(monkeypatch, tmp_path, "database_mosaic.py", [])
    out = capsys.readouterr().out
    assert "with reuse" in out
    assert "without reuse" in out
