"""Tests for the paper's two kernels on the virtual GPU (Section V)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coloring.groups import build_edge_groups
from repro.cost.matrix import error_matrix
from repro.exceptions import GpuSimError, ValidationError
from repro.gpusim.device import DeviceProperties, TESLA_K40
from repro.gpusim.kernel import KernelStats
from repro.gpusim.kernels.error_kernel import error_matrix_gpu
from repro.gpusim.kernels.swap_kernel import run_swap_class_on_device
from repro.localsearch.parallel import local_search_parallel
from repro.tiles.permutation import identity_permutation


class TestErrorKernel:
    def test_matches_host_implementation(self, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        assert (
            error_matrix_gpu(tiles_in, tiles_tg) == error_matrix(tiles_in, tiles_tg)
        ).all()

    def test_one_block_per_input_tile(self, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        stats = KernelStats()
        error_matrix_gpu(tiles_in, tiles_tg, stats=stats)
        assert stats.launches == 1
        assert stats.blocks == tiles_in.shape[0]

    def test_lane_ops_equal_exact_work(self, tile_stacks_8x8):
        """Reported ops must equal the analytic S^2 * M^2 count."""
        tiles_in, tiles_tg = tile_stacks_8x8
        stats = KernelStats()
        error_matrix_gpu(tiles_in, tiles_tg, stats=stats)
        s, m, _ = tiles_in.shape
        assert stats.lane_ops == s * s * m * m

    @pytest.mark.parametrize("block_dim", [1, 7, 64, 1024])
    def test_any_block_dim(self, block_dim, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        expected = error_matrix(tiles_in, tiles_tg)
        assert (
            error_matrix_gpu(tiles_in, tiles_tg, block_dim=block_dim) == expected
        ).all()

    def test_shared_memory_limit_enforced(self):
        """A tile too large for 48 KiB of shared memory must be rejected."""
        big = np.zeros((2, 200, 200), dtype=np.uint8)  # 80 KB of int16 staging
        with pytest.raises(GpuSimError, match="shared memory"):
            error_matrix_gpu(big, big)

    def test_rejects_mismatched_stacks(self, tile_stacks_8x8):
        tiles_in, _ = tile_stacks_8x8
        with pytest.raises(ValidationError):
            error_matrix_gpu(tiles_in, tiles_in[:5])


class TestSwapKernel:
    def test_single_class_matches_vectorized(self, small_error_matrix):
        s = small_error_matrix.shape[0]
        groups = build_edge_groups(s)
        us, vs = groups.classes[0]
        perm_a = identity_permutation(s)
        perm_b = identity_permutation(s)
        swaps = run_swap_class_on_device(small_error_matrix, perm_a, us, vs)
        # Reference: direct vectorised commit.
        from repro.localsearch.parallel import _commit_class

        ref_swaps = _commit_class(small_error_matrix, perm_b, us, vs)
        assert swaps == ref_swaps
        assert (perm_a == perm_b).all()

    def test_full_run_equals_vectorized_backend(self, small_error_matrix):
        a = local_search_parallel(small_error_matrix, backend="gpusim")
        b = local_search_parallel(small_error_matrix, backend="vectorized")
        assert a.total == b.total
        assert (a.permutation == b.permutation).all()

    def test_empty_class_is_noop(self, small_error_matrix):
        perm = identity_permutation(small_error_matrix.shape[0])
        empty = np.array([], dtype=np.intp)
        assert run_swap_class_on_device(small_error_matrix, perm, empty, empty) == 0

    def test_swap_count_reported(self):
        m = np.array([[10, 1], [1, 10]], dtype=np.int64)
        perm = identity_permutation(2)
        us = np.array([0], dtype=np.intp)
        vs = np.array([1], dtype=np.intp)
        assert run_swap_class_on_device(m, perm, us, vs) == 1
        assert perm.tolist() == [1, 0]

    def test_non_improving_pair_not_swapped(self):
        m = np.array([[1, 10], [10, 1]], dtype=np.int64)
        perm = identity_permutation(2)
        us = np.array([0], dtype=np.intp)
        vs = np.array([1], dtype=np.intp)
        assert run_swap_class_on_device(m, perm, us, vs) == 0
        assert perm.tolist() == [0, 1]

    def test_rejects_misaligned_pairs(self, small_error_matrix):
        perm = identity_permutation(small_error_matrix.shape[0])
        with pytest.raises(ValidationError, match="aligned"):
            run_swap_class_on_device(
                small_error_matrix,
                perm,
                np.array([0, 1], dtype=np.intp),
                np.array([2], dtype=np.intp),
            )

    def test_stats_launches(self, small_error_matrix):
        s = small_error_matrix.shape[0]
        groups = build_edge_groups(s)
        perm = identity_permutation(s)
        stats = KernelStats()
        for us, vs in groups.classes:
            if us.size:
                run_swap_class_on_device(
                    small_error_matrix, perm, us, vs, stats=stats
                )
        # Even S: S-1 non-empty classes.
        assert stats.launches == s - 1
