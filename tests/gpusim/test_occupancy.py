"""Tests for the occupancy calculator."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.gpusim.device import TESLA_K40
from repro.gpusim.occupancy import best_block_dim, occupancy


class TestOccupancy:
    def test_full_occupancy_no_shared(self):
        report = occupancy(TESLA_K40, 256)
        assert report.blocks_per_sm == 8  # 2048 threads / 256
        assert report.occupancy == 1.0
        assert report.limiter == "threads"

    def test_block_limit_binds_for_tiny_blocks(self):
        report = occupancy(TESLA_K40, 32)
        assert report.limiter == "blocks"
        assert report.blocks_per_sm == 16
        assert report.occupancy == pytest.approx(16 * 32 / 2048)

    def test_shared_memory_limiter(self):
        # 8 KiB per block -> 6 blocks fit in 48 KiB.
        report = occupancy(TESLA_K40, 256, shared_bytes_per_block=8 * 1024)
        assert report.limiter == "shared_memory"
        assert report.blocks_per_sm == 6
        assert report.occupancy == pytest.approx(6 * 256 / 2048)

    def test_occupancy_bounded(self):
        for block in (32, 100, 256, 1024):
            report = occupancy(TESLA_K40, block, shared_bytes_per_block=1024)
            assert 0.0 <= report.occupancy <= 1.0

    def test_rejects_oversized_block(self):
        with pytest.raises(ValidationError, match="block_dim"):
            occupancy(TESLA_K40, 2048)

    def test_rejects_oversized_shared(self):
        with pytest.raises(ValidationError, match="shared memory"):
            occupancy(TESLA_K40, 256, shared_bytes_per_block=64 * 1024)

    def test_rejects_negative_shared(self):
        with pytest.raises(ValidationError):
            occupancy(TESLA_K40, 256, shared_bytes_per_block=-1)


class TestBestBlockDim:
    def test_prefers_full_occupancy(self):
        report = best_block_dim(TESLA_K40)
        assert report.occupancy == 1.0

    def test_ties_break_small(self):
        # 128, 256, 512, 1024 all reach occupancy 1 with no shared memory;
        # the smallest winning candidate must be returned.
        report = best_block_dim(TESLA_K40)
        assert report.block_dim == 128

    def test_shared_memory_changes_choice(self):
        # 16 KiB/block -> only 3 blocks fit per SM; only 1024-thread blocks
        # (limited to 2 by the thread cap instead) still reach the full
        # 2048 active threads.
        tight = best_block_dim(TESLA_K40, shared_bytes_per_block=16 * 1024)
        assert tight.block_dim == 1024
        assert tight.occupancy == 1.0
        assert tight.limiter == "threads"

    def test_error_kernel_footprint(self):
        """The paper's Step-2 kernel stages one tile (<= 2 KiB int16 at
        M=32): occupancy must not be shared-memory limited."""
        report = best_block_dim(TESLA_K40, shared_bytes_per_block=2 * 1024)
        assert report.limiter != "shared_memory"
        assert report.occupancy == 1.0

    def test_no_feasible_candidate(self):
        from dataclasses import replace

        tiny = replace(TESLA_K40, max_threads_per_block=16)
        with pytest.raises(ValidationError, match="no candidate"):
            best_block_dim(tiny)
