"""Tests for the virtual-GPU memory spaces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GpuSimError
from repro.gpusim.memory import GlobalMemory, SharedMemory


class TestGlobalMemory:
    def test_alloc_zeroed(self):
        gmem = GlobalMemory()
        buf = gmem.alloc("a", (4, 4), np.int64)
        assert (buf == 0).all()
        assert gmem.bytes_allocated == 4 * 4 * 8

    def test_upload_copies(self):
        gmem = GlobalMemory()
        host = np.arange(6)
        dev = gmem.upload("x", host)
        host[0] = 99
        assert dev[0] == 0  # device copy unaffected by later host writes

    def test_attach_aliases(self):
        gmem = GlobalMemory()
        host = np.arange(6)
        gmem.attach("x", host)
        gmem.write("x", 0, 42)
        assert host[0] == 42  # attach is zero-copy by design

    def test_download_copies(self):
        gmem = GlobalMemory()
        gmem.upload("x", np.arange(3))
        out = gmem.download("x")
        out[0] = 7
        assert gmem.buffer("x")[0] == 0

    def test_read_write_metered(self):
        gmem = GlobalMemory()
        gmem.alloc("a", (10,), np.int64)
        gmem.write("a", slice(0, 4), np.arange(4))
        gmem.read("a", slice(0, 2))
        assert gmem.bytes_written == 4 * 8
        assert gmem.bytes_read == 2 * 8

    def test_duplicate_name_rejected(self):
        gmem = GlobalMemory()
        gmem.alloc("a", (1,), np.uint8)
        with pytest.raises(GpuSimError, match="already allocated"):
            gmem.alloc("a", (1,), np.uint8)
        with pytest.raises(GpuSimError, match="already allocated"):
            gmem.upload("a", np.zeros(1))

    def test_missing_buffer(self):
        with pytest.raises(GpuSimError, match="no global buffer"):
            GlobalMemory().buffer("nope")

    def test_free_releases(self):
        gmem = GlobalMemory()
        gmem.alloc("a", (8,), np.int64)
        gmem.free("a")
        assert gmem.bytes_allocated == 0
        with pytest.raises(GpuSimError):
            gmem.buffer("a")

    def test_free_unknown(self):
        with pytest.raises(GpuSimError):
            GlobalMemory().free("nope")


class TestSharedMemory:
    def test_alloc_within_capacity(self):
        smem = SharedMemory(1024)
        arr = smem.alloc("tile", (64,), np.int16)
        assert arr.nbytes == 128
        assert smem.bytes_used == 128

    def test_overflow_rejected(self):
        smem = SharedMemory(100)
        with pytest.raises(GpuSimError, match="overflow"):
            smem.alloc("big", (200,), np.int8)

    def test_cumulative_overflow(self):
        smem = SharedMemory(100)
        smem.alloc("a", (60,), np.int8)
        with pytest.raises(GpuSimError, match="overflow"):
            smem.alloc("b", (60,), np.int8)

    def test_get(self):
        smem = SharedMemory(64)
        smem.alloc("a", (4,), np.int8)
        assert smem.get("a").shape == (4,)

    def test_get_missing(self):
        with pytest.raises(GpuSimError, match="no shared array"):
            SharedMemory(64).get("a")

    def test_duplicate_name(self):
        smem = SharedMemory(64)
        smem.alloc("a", (4,), np.int8)
        with pytest.raises(GpuSimError, match="already allocated"):
            smem.alloc("a", (4,), np.int8)

    def test_zero_capacity_rejected(self):
        with pytest.raises(GpuSimError):
            SharedMemory(0)
