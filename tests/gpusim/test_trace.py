"""Tests for the simulated execution timeline."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.gpusim.device import TESLA_K40
from repro.gpusim.kernel import KernelStats
from repro.gpusim.trace import SimulatedTimeline


def _stats(ops=1_000_000, launches=1):
    return KernelStats(launches=launches, lane_ops=ops)


class TestTimeline:
    def test_events_serialize(self):
        tl = SimulatedTimeline()
        a = tl.record("step2", _stats(), bytes_moved=10**6)
        b = tl.record("step3", _stats(), bytes_moved=10**5)
        assert a.start == 0.0
        assert b.start == pytest.approx(a.duration)
        assert tl.total_seconds == pytest.approx(a.duration + b.duration)

    def test_by_name_accumulates(self):
        tl = SimulatedTimeline()
        tl.record("swap", _stats(ops=100), bytes_moved=100)
        tl.record("swap", _stats(ops=100), bytes_moved=100)
        tl.record("error", _stats(ops=100), bytes_moved=100)
        per_name = tl.by_name()
        assert set(per_name) == {"swap", "error"}
        assert per_name["swap"] == pytest.approx(2 * per_name["error"])

    def test_empty_timeline(self):
        tl = SimulatedTimeline()
        assert tl.total_seconds == 0.0
        assert tl.render() == "(empty timeline)"

    def test_render_contains_events(self):
        tl = SimulatedTimeline()
        tl.record("kernel_a", _stats(), bytes_moved=0)
        text = tl.render()
        assert "kernel_a" in text
        assert TESLA_K40.name in text

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError, match="name"):
            SimulatedTimeline().record("", _stats(), bytes_moved=0)


class TestPipelineTrace:
    def test_trace_of_real_swap_sweep(self, small_error_matrix):
        """Trace one Algorithm-2 sweep through the virtual GPU."""
        import numpy as np

        from repro.coloring.groups import build_edge_groups
        from repro.gpusim.kernels.swap_kernel import run_swap_class_on_device
        from repro.tiles.permutation import identity_permutation

        s = small_error_matrix.shape[0]
        groups = build_edge_groups(s)
        perm = identity_permutation(s)
        tl = SimulatedTimeline()
        for index, (us, vs) in enumerate(groups.classes):
            if us.size == 0:
                continue
            stats = KernelStats()
            run_swap_class_on_device(small_error_matrix, perm, us, vs, stats=stats)
            tl.record(f"class_{index}", stats, bytes_moved=int(us.size) * 6 * 8)
        assert len(tl.events) == s - 1  # even S: one empty class
        assert tl.total_seconds > 0
        # Launch overhead must dominate at this tiny S (the paper's
        # small-S GPU slowdown, visible in the simulated clock too).
        overhead = (s - 1) * TESLA_K40.kernel_launch_overhead
        assert tl.total_seconds >= overhead
        assert tl.total_seconds < 2 * overhead
