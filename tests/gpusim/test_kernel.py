"""Tests for kernel launch and SIMT execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GpuSimError
from repro.gpusim.device import CORE_I7_3770, TESLA_K40, DeviceProperties
from repro.gpusim.kernel import KernelStats, launch_kernel
from repro.gpusim.memory import GlobalMemory


def _saxpy_kernel(ctx, alpha):
    """Toy kernel: out = alpha * x + y, one element per global thread."""
    ids = ctx.global_thread_ids()
    n = ctx.global_mem.buffer("x").shape[0]
    ids = ids[ids < n]
    if ids.size == 0:
        return
    x = ctx.global_mem.read("x", ids)
    y = ctx.global_mem.read("y", ids)
    ctx.count_ops(2 * ids.size)
    ctx.global_mem.write("out", ids, alpha * x + y)


class TestLaunch:
    def test_computes_correctly(self):
        gmem = GlobalMemory()
        gmem.upload("x", np.arange(10, dtype=np.float64))
        gmem.upload("y", np.ones(10))
        gmem.alloc("out", (10,), np.float64)
        launch_kernel(TESLA_K40, gmem, _saxpy_kernel, 2.0, grid_dim=3, block_dim=4)
        assert np.allclose(gmem.buffer("out"), 2.0 * np.arange(10) + 1)

    def test_stats_accumulate(self):
        gmem = GlobalMemory()
        gmem.upload("x", np.arange(8, dtype=np.float64))
        gmem.upload("y", np.zeros(8))
        gmem.alloc("out", (8,), np.float64)
        stats = KernelStats()
        launch_kernel(
            TESLA_K40, gmem, _saxpy_kernel, 1.0, grid_dim=2, block_dim=4, stats=stats
        )
        launch_kernel(
            TESLA_K40, gmem, _saxpy_kernel, 1.0, grid_dim=2, block_dim=4, stats=stats
        )
        assert stats.launches == 2
        assert stats.blocks == 4
        assert stats.lane_ops == 2 * 2 * 8

    def test_block_dim_limit(self):
        gmem = GlobalMemory()
        with pytest.raises(GpuSimError, match="block_dim"):
            launch_kernel(
                TESLA_K40, gmem, _saxpy_kernel, 1.0, grid_dim=1, block_dim=2048
            )

    def test_cpu_device_single_lane(self):
        gmem = GlobalMemory()
        with pytest.raises(GpuSimError):
            launch_kernel(
                CORE_I7_3770, gmem, _saxpy_kernel, 1.0, grid_dim=1, block_dim=2
            )

    def test_grid_dim_positive(self):
        with pytest.raises(GpuSimError, match="grid_dim"):
            launch_kernel(
                TESLA_K40, GlobalMemory(), _saxpy_kernel, 1.0, grid_dim=0, block_dim=1
            )


def _shared_leak_kernel(ctx):
    """Tries to observe another block's shared memory (must fail)."""
    if ctx.block_idx == 0:
        ctx.shared.alloc("secret", (1,), np.int64)[0] = 7
    else:
        # CUDA semantics: a new block sees fresh shared memory.
        arr = ctx.shared.alloc("secret", (1,), np.int64)
        ctx.global_mem.write("leak", ctx.block_idx - 1, arr[0])


class TestSharedIsolation:
    def test_blocks_do_not_share_shared_memory(self):
        gmem = GlobalMemory()
        gmem.alloc("leak", (3,), np.int64)
        launch_kernel(TESLA_K40, gmem, _shared_leak_kernel, grid_dim=4, block_dim=1)
        assert (gmem.buffer("leak") == 0).all()


class TestDeviceProperties:
    def test_k40_spec(self):
        assert TESLA_K40.total_cores == 2880
        assert TESLA_K40.warp_size == 32

    def test_validation(self):
        with pytest.raises(Exception):
            DeviceProperties(
                name="bad",
                sm_count=0,
                cores_per_sm=1,
                clock_hz=1.0,
                mem_bandwidth=1.0,
                shared_mem_per_block=1,
                max_threads_per_block=1,
                warp_size=1,
                kernel_launch_overhead=0.0,
            )
