"""Tests for the calibrated performance model.

The model's contract is to reproduce the paper's published tables: each
test pins a paper number and requires the prediction within a stated
tolerance, so any recalibration that breaks fidelity fails loudly.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.gpusim.perfmodel import PerformanceModel, interpolate_loglog

MODEL = PerformanceModel()


def within(value: float, target: float, rel: float) -> bool:
    return abs(value - target) <= rel * target


class TestInterpolateLoglog:
    def test_exact_at_anchors(self):
        anchors = {10: 1.0, 100: 100.0}
        assert interpolate_loglog(anchors, 10) == pytest.approx(1.0)
        assert interpolate_loglog(anchors, 100) == pytest.approx(100.0)

    def test_power_law_between(self):
        anchors = {10: 1.0, 1000: 100.0}  # exponent 1
        assert interpolate_loglog(anchors, 100) == pytest.approx(10.0)

    def test_extrapolates_with_boundary_slope(self):
        anchors = {10: 10.0, 100: 100.0}  # linear
        assert interpolate_loglog(anchors, 1000) == pytest.approx(1000.0)
        assert interpolate_loglog(anchors, 1) == pytest.approx(1.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValidationError):
            interpolate_loglog({10: 1.0, 20: 2.0}, 0)
        with pytest.raises(ValidationError):
            interpolate_loglog({10: 1.0}, 5)


class TestTable2Fidelity:
    """Paper Table II, CPU column (seconds)."""

    @pytest.mark.parametrize(
        "n,tiles,paper",
        [
            (512, 16, 0.397),
            (512, 32, 1.599),
            (512, 64, 6.253),
            (1024, 32, 6.178),
            (2048, 64, 98.485),
        ],
    )
    def test_cpu_times(self, n, tiles, paper):
        predicted = MODEL.error_matrix_time(n, tiles * tiles, "cpu")
        assert within(predicted, paper, 0.15)

    @pytest.mark.parametrize(
        "n,tiles,paper",
        [(512, 32, 0.017), (1024, 32, 0.077), (2048, 64, 1.230)],
    )
    def test_gpu_times(self, n, tiles, paper):
        predicted = MODEL.error_matrix_time(n, tiles * tiles, "gpu")
        assert within(predicted, paper, 0.6)

    def test_speedup_range_matches_paper(self):
        """Paper: 58-93x across the grid."""
        for n in (512, 1024, 2048):
            for t in (16, 32, 64):
                s = t * t
                ratio = MODEL.error_matrix_time(n, s, "cpu") / MODEL.error_matrix_time(
                    n, s, "gpu"
                )
                assert 30 <= ratio <= 130


class TestTable3Fidelity:
    def test_matching_anchors_exact(self):
        assert MODEL.matching_time(256) == pytest.approx(0.067, rel=1e-6)
        assert MODEL.matching_time(1024) == pytest.approx(15.694, rel=1e-6)
        assert MODEL.matching_time(4096) == pytest.approx(1264.378, rel=1e-6)

    @pytest.mark.parametrize(
        "tiles,paper_cpu",
        [(16, 0.0067), (32, 0.176), (64, 7.0)],
    )
    def test_approximation_cpu(self, tiles, paper_cpu):
        predicted = MODEL.approximation_time(tiles * tiles, "cpu")
        assert within(predicted, paper_cpu, 0.95)

    def test_gpu_loses_at_small_s(self):
        """Paper Table III: speedup ~0.5 at S=16^2 (launch overhead wins)."""
        s = 256
        cpu = MODEL.approximation_time(s, "cpu")
        gpu = MODEL.approximation_time(s, "gpu")
        assert gpu > 0.5 * cpu  # no big win

    def test_gpu_wins_at_large_s(self):
        """Paper: >= 18x at S=64^2."""
        s = 4096
        ratio = MODEL.approximation_time(s, "cpu") / MODEL.approximation_time(s, "gpu")
        assert ratio >= 10


class TestTable4Fidelity:
    @pytest.mark.parametrize(
        "n,tiles,paper",
        [(512, 16, 6.76), (1024, 16, 17.89), (2048, 16, 40.74)],
    )
    def test_optimization_speedup(self, n, tiles, paper):
        assert within(MODEL.speedup(n, tiles * tiles, "optimization"), paper, 0.25)

    def test_optimization_speedup_collapses_for_large_s(self):
        """Paper: matching dominates, speedup -> ~1 for S=64^2."""
        assert MODEL.speedup(2048, 4096, "optimization") < 1.5

    @pytest.mark.parametrize(
        "n,tiles,paper",
        [(512, 16, 23.24), (1024, 32, 43.04), (2048, 64, 66.76)],
    )
    def test_approximation_speedup(self, n, tiles, paper):
        assert within(MODEL.speedup(n, tiles * tiles, "approximation"), paper, 0.3)

    def test_approximation_speedup_grows_with_n(self):
        for t in (16, 32, 64):
            s = t * t
            speedups = [MODEL.speedup(n, s, "approximation") for n in (512, 1024, 2048)]
            assert speedups[0] < speedups[1] < speedups[2]


class TestValidationAndSweeps:
    def test_expected_sweeps_anchors(self):
        assert MODEL.expected_sweeps(256) == 9
        assert MODEL.expected_sweeps(1024) == 8
        assert MODEL.expected_sweeps(4096) == 16

    def test_expected_sweeps_interpolates(self):
        assert 1 <= MODEL.expected_sweeps(512) <= 20

    def test_rejects_bad_device(self):
        with pytest.raises(ValidationError, match="device"):
            MODEL.error_matrix_time(512, 256, "tpu")

    def test_rejects_bad_algorithm(self):
        with pytest.raises(ValidationError, match="algorithm"):
            MODEL.pipeline_time(512, 256, "genetic", "cpu")

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValidationError):
            MODEL.error_matrix_time(0, 256, "cpu")
        with pytest.raises(ValidationError):
            MODEL.approximation_time(256, "cpu", sweeps=0)
