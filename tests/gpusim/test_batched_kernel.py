"""Batched virtual-GPU error kernel: one launch, per-job bit-identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.gpusim.kernel import KernelStats
from repro.gpusim.kernels import error_matrices_gpu_batched, error_matrix_gpu

S, M = 16, 6


def _stack(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(S, M, M), dtype=np.uint8)


@pytest.mark.parametrize("batch", (1, 2, 5))
def test_batched_matches_solo_bit_for_bit(batch):
    jobs = [(_stack(i), _stack(100 + i)) for i in range(batch)]
    solo = [error_matrix_gpu(i, t) for i, t in jobs]
    batched = error_matrices_gpu_batched(jobs)
    assert len(batched) == batch
    for want, got in zip(solo, batched):
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)


def test_one_launch_replaces_b_launches_with_equal_ops():
    jobs = [(_stack(i), _stack(50 + i)) for i in range(4)]
    solo_stats = KernelStats()
    for i, t in jobs:
        error_matrix_gpu(i, t, stats=solo_stats)
    batch_stats = KernelStats()
    error_matrices_gpu_batched(jobs, stats=batch_stats)
    assert solo_stats.launches == 4
    assert batch_stats.launches == 1
    assert batch_stats.blocks == 4 * S  # block b -> job b // S, row b % S
    assert batch_stats.lane_ops == solo_stats.lane_ops


def test_shared_target_uploaded_once():
    """Jobs sharing a target grid reuse one device buffer."""
    shared = _stack(9)
    jobs = [(_stack(i), shared) for i in range(3)]
    batched = error_matrices_gpu_batched(jobs)
    for (i, t), got in zip(jobs, batched):
        np.testing.assert_array_equal(got, error_matrix_gpu(i, t))


def test_empty_batch_and_grid_mismatch():
    assert error_matrices_gpu_batched([]) == []
    small = np.zeros((4, 6, 6), dtype=np.uint8)
    with pytest.raises(ValidationError):
        error_matrices_gpu_batched([(_stack(0), _stack(1)), (small, small)])
