"""Tests for roofline estimation from metered kernel counters."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.gpusim.device import CORE_I7_3770, TESLA_K40
from repro.gpusim.kernel import KernelStats
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.roofline import estimate_kernel_time


def _stats(launches=1, ops=1_000_000):
    return KernelStats(launches=launches, lane_ops=ops)


class TestEstimate:
    def test_compute_bound_case(self):
        # Tiny data, huge op count -> compute roof binds.
        est = estimate_kernel_time(_stats(ops=10**10), TESLA_K40, bytes_moved=10)
        assert est.bound == "compute"
        assert est.total_seconds > est.memory_seconds

    def test_memory_bound_case(self):
        est = estimate_kernel_time(_stats(ops=10), TESLA_K40, bytes_moved=10**10)
        assert est.bound == "memory"

    def test_launch_overhead_additive(self):
        one = estimate_kernel_time(_stats(launches=1), TESLA_K40, bytes_moved=0)
        many = estimate_kernel_time(_stats(launches=1000), TESLA_K40, bytes_moved=0)
        assert many.total_seconds - one.total_seconds == pytest.approx(
            999 * TESLA_K40.kernel_launch_overhead
        )

    def test_monotone_in_work(self):
        small = estimate_kernel_time(_stats(ops=10**6), TESLA_K40, bytes_moved=10**6)
        large = estimate_kernel_time(_stats(ops=10**8), TESLA_K40, bytes_moved=10**8)
        assert large.total_seconds > small.total_seconds

    def test_gpu_beats_cpu_on_parallel_work(self):
        stats = _stats(ops=10**9)
        gpu = estimate_kernel_time(stats, TESLA_K40, bytes_moved=10**8)
        cpu = estimate_kernel_time(stats, CORE_I7_3770, bytes_moved=10**8)
        assert gpu.total_seconds < cpu.total_seconds

    def test_bytes_from_global_memory(self):
        gmem = GlobalMemory()
        gmem.alloc("a", (1000,), "int64")
        gmem.write("a", slice(None), list(range(1000)))
        gmem.read("a", slice(0, 500))
        est = estimate_kernel_time(_stats(), TESLA_K40, global_mem=gmem)
        assert est.memory_seconds == pytest.approx(
            (1000 * 8 + 500 * 8) / TESLA_K40.mem_bandwidth
        )


class TestEndToEndWithKernel:
    def test_error_kernel_counters_feed_roofline(self, tile_stacks_8x8):
        from repro.gpusim.kernels.error_kernel import error_matrix_gpu

        tiles_in, tiles_tg = tile_stacks_8x8
        stats = KernelStats()
        error_matrix_gpu(tiles_in, tiles_tg, stats=stats)
        s, m, _ = tiles_in.shape
        est = estimate_kernel_time(
            stats, TESLA_K40, bytes_moved=s * s * m * m * 2
        )
        # The roofline is an idealised bound: no staging/transfer overheads,
        # so it must lower-bound the calibrated model's prediction (which
        # absorbs those into its fitted constants) while staying positive.
        from repro.gpusim.perfmodel import PerformanceModel

        model = PerformanceModel().error_matrix_time(
            int(np.sqrt(s)) * m, s, "gpu"
        )
        assert 0 < est.total_seconds < model
        # And the op counter matches the exact analytic work.
        assert stats.lane_ops == s * s * m * m


class TestValidation:
    def test_requires_byte_source(self):
        with pytest.raises(ValidationError, match="global_mem or bytes_moved"):
            estimate_kernel_time(_stats(), TESLA_K40)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValidationError):
            estimate_kernel_time(_stats(), TESLA_K40, bytes_moved=-1)

    def test_rejects_bad_ipc(self):
        with pytest.raises(ValidationError, match="instructions_per_op"):
            estimate_kernel_time(
                _stats(), TESLA_K40, bytes_moved=0, instructions_per_op=0
            )


import numpy as np  # noqa: E402  (used in TestEndToEndWithKernel)
