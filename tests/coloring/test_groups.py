"""Tests for packed edge groups."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coloring.groups import build_edge_groups
from repro.coloring.round_robin import edge_coloring_complete
from repro.exceptions import ValidationError


class TestBuildEdgeGroups:
    def test_matches_pair_lists(self):
        groups = build_edge_groups(16)
        raw = edge_coloring_complete(16)
        assert groups.as_pair_lists() == raw

    def test_edge_count(self):
        groups = build_edge_groups(10)
        assert groups.edge_count == 10 * 9 // 2

    def test_class_count_even(self):
        assert build_edge_groups(16).class_count == 16

    def test_class_count_odd(self):
        assert build_edge_groups(9).class_count == 9

    def test_arrays_are_intp(self):
        groups = build_edge_groups(8)
        for us, vs in groups.classes:
            assert us.dtype == np.intp
            assert vs.dtype == np.intp
            assert us.shape == vs.shape

    def test_disjoint_within_class(self):
        groups = build_edge_groups(20)
        for us, vs in groups.classes:
            ids = np.concatenate([us, vs])
            assert len(np.unique(ids)) == ids.size

    def test_caching_returns_same_object(self):
        assert build_edge_groups(12) is build_edge_groups(12)

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            build_edge_groups(0)

    def test_networkx_cross_check(self):
        """Every class must be a matching of K_n per networkx."""
        import networkx as nx

        n = 14
        graph = nx.complete_graph(n)
        groups = build_edge_groups(n)
        covered = set()
        for us, vs in groups.classes:
            pairs = {(int(u), int(v)) for u, v in zip(us, vs)}
            assert nx.is_matching(graph, pairs)
            covered |= pairs
        assert covered == {(min(u, v), max(u, v)) for u, v in graph.edges}
