"""Tests for edge-colouring verification."""

from __future__ import annotations

import pytest

from repro.coloring.verify import is_valid_complete_coloring, verify_color_classes
from repro.exceptions import ValidationError


def test_accepts_valid_k4():
    classes = [[(0, 1), (2, 3)], [(0, 2), (1, 3)], [(0, 3), (1, 2)]]
    verify_color_classes(classes, 4)
    assert is_valid_complete_coloring(classes, 4)


def test_rejects_shared_vertex_in_class():
    classes = [[(0, 1), (1, 2)], [(0, 2), (1, 3)], [(0, 3), (2, 3)]]
    with pytest.raises(ValidationError, match="matching"):
        verify_color_classes(classes, 4)


def test_rejects_missing_edge():
    classes = [[(0, 1), (2, 3)], [(0, 2), (1, 3)]]  # (0,3),(1,2) missing
    with pytest.raises(ValidationError, match="covers"):
        verify_color_classes(classes, 4)


def test_rejects_duplicate_edge():
    classes = [
        [(0, 1), (2, 3)],
        [(0, 2), (1, 3)],
        [(0, 3), (1, 2)],
        [(0, 1)],
    ]
    with pytest.raises(ValidationError):
        verify_color_classes(classes, 4)


def test_rejects_unnormalised_pair():
    classes = [[(1, 0), (2, 3)], [(0, 2), (1, 3)], [(0, 3), (1, 2)]]
    with pytest.raises(ValidationError, match="unnormalised"):
        verify_color_classes(classes, 4)


def test_rejects_out_of_range_vertex():
    classes = [[(0, 4)]]
    with pytest.raises(ValidationError):
        verify_color_classes(classes, 4)


def test_rejects_too_many_classes():
    classes = [[] for _ in range(6)]
    with pytest.raises(ValidationError, match="Theorem 1"):
        verify_color_classes(classes, 5)


def test_boolean_form_false_not_raise():
    assert not is_valid_complete_coloring([[(0, 1), (1, 2)]], 3)
