"""Tests for the circle-method edge colouring (paper Theorem 1)."""

from __future__ import annotations

import pytest

from repro.coloring.round_robin import edge_coloring_complete
from repro.coloring.verify import verify_color_classes
from repro.exceptions import ValidationError

# The paper's published K_16 colouring (Section IV-B), converted to
# 0-indexed pairs.  P_16 is the empty set.
PAPER_K16 = [
    [(0, 1), (2, 14), (3, 13), (4, 12), (5, 11), (6, 10), (7, 9), (8, 15)],
    [(0, 3), (1, 2), (4, 14), (5, 13), (6, 12), (7, 11), (8, 10), (9, 15)],
    [(0, 5), (1, 4), (2, 3), (6, 14), (7, 13), (8, 12), (9, 11), (10, 15)],
    [(0, 7), (1, 6), (2, 5), (3, 4), (8, 14), (9, 13), (10, 12), (11, 15)],
    [(0, 9), (1, 8), (2, 7), (3, 6), (4, 5), (10, 14), (11, 13), (12, 15)],
    [(0, 11), (1, 10), (2, 9), (3, 8), (4, 7), (5, 6), (12, 14), (13, 15)],
    [(0, 13), (1, 12), (2, 11), (3, 10), (4, 9), (5, 8), (6, 7), (14, 15)],
    [(0, 15), (1, 14), (2, 13), (3, 12), (4, 11), (5, 10), (6, 9), (7, 8)],
    [(0, 2), (1, 15), (3, 14), (4, 13), (5, 12), (6, 11), (7, 10), (8, 9)],
    [(0, 4), (1, 3), (2, 15), (5, 14), (6, 13), (7, 12), (8, 11), (9, 10)],
    [(0, 6), (1, 5), (2, 4), (3, 15), (7, 14), (8, 13), (9, 12), (10, 11)],
    [(0, 8), (1, 7), (2, 6), (3, 5), (4, 15), (9, 14), (10, 13), (11, 12)],
    [(0, 10), (1, 9), (2, 8), (3, 7), (4, 6), (5, 15), (11, 14), (12, 13)],
    [(0, 12), (1, 11), (2, 10), (3, 9), (4, 8), (5, 7), (6, 15), (13, 14)],
    [(0, 14), (1, 13), (2, 12), (3, 11), (4, 10), (5, 9), (6, 8), (7, 15)],
    [],
]


class TestPaperExample:
    def test_reproduces_published_k16_listing(self):
        """The exact P_1..P_16 listing from Section IV-B."""
        classes = edge_coloring_complete(16, order="paper")
        assert [sorted(c) for c in classes] == [sorted(c) for c in PAPER_K16]

    def test_round_order_same_partition(self):
        paper = edge_coloring_complete(16, order="paper")
        rounds = edge_coloring_complete(16, order="round")
        assert {frozenset(c) for c in paper} == {frozenset(c) for c in rounds}


class TestTheorem1:
    @pytest.mark.parametrize("n", [2, 4, 6, 16, 64, 100, 256])
    def test_even_n_uses_n_minus_1_colors(self, n):
        classes = edge_coloring_complete(n)
        nonempty = [c for c in classes if c]
        assert len(nonempty) == n - 1
        # Even-n convention: trailing empty class so there are S groups.
        assert classes[-1] == []

    @pytest.mark.parametrize("n", [3, 5, 7, 9, 15, 63, 101])
    def test_odd_n_uses_n_colors(self, n):
        classes = edge_coloring_complete(n)
        nonempty = [c for c in classes if c]
        assert len(nonempty) == n

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 16, 17, 64, 100])
    def test_valid_coloring(self, n):
        verify_color_classes(edge_coloring_complete(n), n)

    @pytest.mark.parametrize("n", [4, 6, 8, 16])
    def test_even_classes_are_perfect_matchings(self, n):
        for pairs in edge_coloring_complete(n):
            if pairs:
                assert len(pairs) == n // 2

    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_odd_classes_leave_one_bye(self, n):
        for pairs in edge_coloring_complete(n):
            assert len(pairs) == (n - 1) // 2


class TestEdgeCases:
    def test_n1(self):
        assert edge_coloring_complete(1) == [[]]

    def test_n2(self):
        classes = edge_coloring_complete(2)
        assert [c for c in classes if c] == [[(0, 1)]]

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            edge_coloring_complete(0)

    def test_rejects_unknown_order(self):
        with pytest.raises(ValidationError, match="order"):
            edge_coloring_complete(8, order="lexicographic")

    def test_pairs_normalised(self):
        for pairs in edge_coloring_complete(17):
            for u, v in pairs:
                assert u < v
