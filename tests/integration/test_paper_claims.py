"""Tests pinning the paper's qualitative claims (the reproduction contract).

Each test quotes the claim it checks.  These run at reduced scale; the
benchmark harness re-checks the same shapes at paper scale.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.assignment import get_solver
from repro.benchharness.workloads import workload_pair
from repro.cost.matrix import error_matrix
from repro.cost.reference import error_matrix_reference
from repro.imaging.histogram import match_histogram
from repro.imaging.metrics import ssim
from repro.localsearch import local_search_parallel, local_search_serial
from repro.tiles.grid import TileGrid


@pytest.fixture(scope="module")
def matrix_256():
    """Error matrix for the portrait->sailboat pair with S=16^2=256."""
    w = workload_pair(256, 16)
    inp, tgt = w.images()
    grid = TileGrid.from_tile_count(256, 16)
    return error_matrix(grid.split(match_histogram(inp, tgt)), grid.split(tgt))


class TestSectionIII:
    def test_matching_gives_minimum_error(self, matrix_256):
        """'By solving the matching problem, we can obtain the best
        rearrangement image.'"""
        optimal = get_solver("scipy").solve(matrix_256).total
        for seed in range(3):
            from repro.tiles.permutation import random_permutation

            perm = random_permutation(matrix_256.shape[0], seed=seed)
            assert int(matrix_256[perm, np.arange(256)].sum()) >= optimal


class TestSectionIV:
    def test_approximation_error_larger_but_close(self, matrix_256):
        """'the total error of the photomosaic image obtained by the
        approximate algorithm must be larger than that by the optimization
        algorithm ... the resulting photomosaic images ... are virtually
        the same'."""
        optimal = get_solver("scipy").solve(matrix_256).total
        approx = local_search_serial(matrix_256).total
        assert approx >= optimal
        assert approx <= 1.10 * optimal  # paper Table I gaps are 1.7-2.3%

    def test_sweep_count_claim(self, matrix_256):
        """'the value k takes at most 9, 8, and 16 for S = 16x16, 32x32,
        and 64x64' — at our scale k must stay in the same low regime."""
        assert local_search_serial(matrix_256).sweeps <= 16

    def test_parallel_and_serial_orders_differ_slightly(self, matrix_256):
        """'since the order of executing the local search between the
        sequential and parallel approximation algorithm is not the same,
        their total errors differ, but the difference is small'."""
        serial = local_search_serial(matrix_256).total
        parallel = local_search_parallel(matrix_256).total
        assert abs(serial - parallel) <= 0.05 * serial


class TestVisualQualityClaim:
    def test_images_virtually_identical_across_algorithms(self):
        """Fig. 7: optimization vs approximation outputs are visually
        indistinguishable -> SSIM between them must be very high."""
        from repro import generate_photomosaic, standard_image

        inp = standard_image("portrait", 256)
        tgt = standard_image("sailboat", 256)
        opt = generate_photomosaic(inp, tgt, tile_size=16, algorithm="optimization")
        apx = generate_photomosaic(inp, tgt, tile_size=16, algorithm="parallel")
        assert ssim(opt.image, apx.image) > 0.9


class TestTableIIShape:
    def test_vectorised_beats_scalar_and_scales(self):
        """Table II: the GPU-model implementation wins, and more work means
        more time on both devices."""
        small = workload_pair(64, 8)
        large = workload_pair(128, 8)

        def times(w):
            tiles_in, tiles_tg = w.tiles()
            t0 = time.perf_counter()
            error_matrix_reference(tiles_in, tiles_tg)
            cpu = time.perf_counter() - t0
            t0 = time.perf_counter()
            error_matrix(tiles_in, tiles_tg)
            gpu = time.perf_counter() - t0
            return cpu, gpu

        cpu_small, gpu_small = times(small)
        cpu_large, _ = times(large)
        assert cpu_small > gpu_small  # vectorised wins
        assert cpu_large > cpu_small  # work scales with N^2 * S


class TestTableIIIShape:
    def test_step3_time_depends_on_s_not_n(self):
        """Table III: 'the computing time of rearrangement does not depend
        on the size of image but on the number of tiles'."""
        w_small = workload_pair(128, 8)
        w_large = workload_pair(256, 8)  # same S, 4x the pixels

        def step3_time(w):
            tiles_in, tiles_tg = w.tiles()
            matrix = error_matrix(tiles_in, tiles_tg)
            t0 = time.perf_counter()
            local_search_serial(matrix)
            return time.perf_counter() - t0

        a = step3_time(w_small)
        b = step3_time(w_large)
        # Same S: times must be within noise of each other (not ~4x apart).
        assert max(a, b) < 3 * min(a, b) + 0.05
