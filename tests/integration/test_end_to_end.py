"""Cross-module integration tests: the full pipeline against its parts."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PhotomosaicGenerator,
    MosaicConfig,
    generate_photomosaic,
    load_image,
    save_image,
    standard_image,
)
from repro.cost.matrix import error_matrix, total_error, total_error_of_permutation
from repro.imaging.histogram import match_histogram
from repro.imaging.metrics import psnr
from repro.tiles.grid import TileGrid


class TestFullPipelineConsistency:
    def test_pipeline_equals_manual_steps(self, small_pair):
        """generate() must equal hand-running Steps 1-3."""
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8, algorithm="optimization")

        adjusted = match_histogram(inp, tgt)
        grid = TileGrid.for_image(adjusted, 8)
        matrix = error_matrix(grid.split(adjusted), grid.split(tgt))
        from repro.assignment import get_solver

        manual = get_solver("scipy").solve(matrix)
        assert result.total_error == manual.total
        manual_image = grid.rearrange(adjusted, manual.permutation)
        assert psnr(result.image, tgt) == pytest.approx(psnr(manual_image, tgt), abs=0.2)

    def test_total_error_cross_check(self, small_pair):
        """Eq. (2) from the matrix and straight from tiles must agree."""
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8, algorithm="parallel")
        adjusted = match_histogram(inp, tgt)
        grid = TileGrid.for_image(adjusted, 8)
        direct = total_error_of_permutation(
            grid.split(adjusted), grid.split(tgt), result.permutation
        )
        assert result.total_error == direct

    def test_save_load_roundtrip_of_result(self, small_pair, tmp_path):
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8)
        path = tmp_path / "mosaic.png"
        save_image(path, result.image)
        assert (load_image(path) == result.image).all()

    def test_rearranging_back_recovers_input(self, small_pair):
        """Applying the inverse permutation undoes the mosaic exactly."""
        from repro.tiles.permutation import invert

        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8, histogram_match=False)
        grid = TileGrid.for_image(inp, 8)
        restored = grid.rearrange(result.image, invert(result.permutation))
        assert (restored == inp).all()


class TestQualityScalesWithS:
    def test_finer_tiles_better_mosaic(self):
        """Paper Fig. 7: quality improves as S grows (16^2 -> 64^2)."""
        inp = standard_image("portrait", 256)
        tgt = standard_image("sailboat", 256)
        errors = []
        psnrs = []
        for tiles_per_side in (4, 8, 16, 32):
            result = generate_photomosaic(
                inp, tgt, tile_size=256 // tiles_per_side, algorithm="parallel"
            )
            errors.append(result.total_error)
            psnrs.append(psnr(result.image, tgt))
        assert errors == sorted(errors, reverse=True)
        assert psnrs == sorted(psnrs)


class TestAllPairsRun:
    @pytest.mark.parametrize(
        "pair",
        [("airplane", "portrait"), ("peppers", "barbara"), ("tiffany", "baboon")],
    )
    def test_fig8_pairs(self, pair):
        inp = standard_image(pair[0], 128)
        tgt = standard_image(pair[1], 128)
        result = generate_photomosaic(inp, tgt, tile_size=8, algorithm="optimization")
        assert result.total_error > 0
        assert result.image.shape == (128, 128)


class TestWarmStartVideo:
    def test_warm_start_converges_faster(self):
        """The video scenario: warm starts need fewer sweeps than cold."""
        from repro.localsearch import local_search_parallel

        inp = standard_image("portrait", 128)
        tgt = standard_image("sailboat", 128)
        grid = TileGrid.for_image(inp, 8)
        adjusted = match_histogram(inp, tgt)
        matrix = error_matrix(grid.split(adjusted), grid.split(tgt))
        cold = local_search_parallel(matrix)
        # A slightly perturbed target: shift intensities by 3.
        tgt2 = np.clip(tgt.astype(int) + 3, 0, 255).astype(np.uint8)
        matrix2 = error_matrix(grid.split(adjusted), grid.split(tgt2))
        warm = local_search_parallel(matrix2, initial=cold.permutation)
        cold2 = local_search_parallel(matrix2)
        assert warm.sweeps <= cold2.sweeps
        assert warm.total <= cold2.total * 1.01


class TestGeneratorReuse:
    def test_one_generator_many_images(self):
        """A configured generator must be reusable without state bleed."""
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8, algorithm="parallel"))
        a1 = gen.generate(standard_image("portrait", 64), standard_image("sailboat", 64))
        b = gen.generate(standard_image("peppers", 64), standard_image("baboon", 64))
        a2 = gen.generate(standard_image("portrait", 64), standard_image("sailboat", 64))
        assert a1.total_error == a2.total_error
        assert (a1.permutation == a2.permutation).all()
        assert b.total_error != a1.total_error
