"""Golden end-to-end regression tests.

Each case in ``scripts/regen_goldens.py`` runs the full pipeline
(histogram match, Step 1 tiling, Step 2 error matrix, Step 3
optimization or 2-opt approximation, rendering) and checksums every
output: the permutation, the rendered mosaic, the total error, and the
bytes produced by the uncompressed image writers (PGM, BMP).  PNG is
compressed, so it is covered by an exact write/read pixel roundtrip
rather than a byte pin.

The case table and the checksum computation are imported FROM the
regeneration script, so this test and ``regen_goldens.py`` cannot drift:
a failure here means the pipeline's output changed.  If the change was
intentional, regenerate with::

    PYTHONPATH=src python scripts/regen_goldens.py

and commit the ``tests/data/goldens.json`` diff with the change.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro import load_image
from repro.imaging.iohub import write_pgm, write_png

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDENS_PATH = REPO_ROOT / "tests" / "data" / "goldens.json"
REGEN_PATH = REPO_ROOT / "scripts" / "regen_goldens.py"


def _load_regen_module():
    spec = importlib.util.spec_from_file_location("regen_goldens", REGEN_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


regen = _load_regen_module()
GOLDENS = json.loads(GOLDENS_PATH.read_text())["cases"]
CASE_NAMES = sorted(regen.CASES)


def test_goldens_file_covers_exactly_the_case_table():
    """goldens.json and the script's case table must list the same cases
    (a case added without regeneration fails here, loudly)."""
    assert sorted(GOLDENS) == CASE_NAMES


@pytest.mark.parametrize("name", CASE_NAMES)
class TestGoldenChecksums:
    def test_pipeline_output_matches_golden(self, name):
        assert regen.compute_case(name) == GOLDENS[name], (
            f"golden case {name!r} drifted; if intentional, regenerate via "
            "`PYTHONPATH=src python scripts/regen_goldens.py`"
        )

    def test_rerun_is_deterministic(self, name):
        """The same case computed twice in-process is bit-identical
        (guards against hidden global state in the pipeline)."""
        assert regen.compute_case(name) == regen.compute_case(name)


@pytest.mark.parametrize("name", CASE_NAMES)
def test_png_roundtrip_preserves_golden_image(name, tmp_path):
    """PNG bytes may differ across zlib builds, but decoding must give
    back exactly the golden mosaic pixels."""
    image = regen.render_case(name)

    path = tmp_path / "mosaic.png"
    write_png(path, image)
    decoded = load_image(path)
    assert (decoded == image).all()
    digest = hashlib.sha256(
        np.ascontiguousarray(decoded, dtype=np.uint8).tobytes()
    ).hexdigest()
    assert digest == GOLDENS[name]["image_sha256"]


def test_pgm_roundtrip_preserves_golden_image(tmp_path):
    """The PGM bytes are pinned by the goldens; loading them back must
    reproduce the golden image checksum too."""
    name = CASE_NAMES[0]
    image = regen.render_case(name)

    path = tmp_path / "mosaic.pgm"
    write_pgm(path, image)
    assert (
        hashlib.sha256(path.read_bytes()).hexdigest()
        == GOLDENS[name]["pgm_sha256"]
    )
    assert (load_image(path) == image).all()
