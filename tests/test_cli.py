"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.imaging import read_png, write_png


class TestParser:
    def test_generate_defaults(self):
        args = build_parser().parse_args(
            ["generate", "--input", "portrait", "--target", "sailboat"]
        )
        assert args.algorithm == "parallel"
        assert args.tile_size == 16

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_table_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--table", "9"])


class TestGenerate:
    def test_standard_names(self, tmp_path, capsys):
        out = tmp_path / "m.png"
        code = main(
            [
                "generate",
                "--input",
                "portrait",
                "--target",
                "sailboat",
                "--size",
                "64",
                "--tile-size",
                "8",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert read_png(out).shape == (64, 64)
        captured = capsys.readouterr().out
        assert "total error" in captured

    def test_file_inputs(self, tmp_path, rng):
        a = tmp_path / "a.png"
        b = tmp_path / "b.png"
        write_png(a, rng.integers(0, 256, size=(32, 32)).astype(np.uint8))
        write_png(b, rng.integers(0, 256, size=(32, 32)).astype(np.uint8))
        out = tmp_path / "out.png"
        code = main(
            [
                "generate",
                "--input", str(a),
                "--target", str(b),
                "--tile-size", "8",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert out.exists()

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="neither"):
            main(
                [
                    "generate",
                    "--input", str(tmp_path / "nope.png"),
                    "--target", "sailboat",
                ]
            )

    def test_shape_mismatch_errors(self, tmp_path, rng):
        a = tmp_path / "a.png"
        write_png(a, rng.integers(0, 256, size=(32, 32)).astype(np.uint8))
        with pytest.raises(SystemExit, match="identical shapes"):
            main(
                [
                    "generate",
                    "--input", str(a),
                    "--target", "sailboat",
                    "--size", "64",
                ]
            )

    def test_optimization_algorithm(self, tmp_path, capsys):
        out = tmp_path / "m.png"
        code = main(
            [
                "generate",
                "--input", "peppers",
                "--target", "barbara",
                "--size", "64",
                "--tile-size", "8",
                "--algorithm", "optimization",
                "--solver", "jv",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert "sweeps" not in capsys.readouterr().out


class TestVideo:
    def test_runs_and_reports_frames(self, capsys):
        code = main(
            [
                "video",
                "--frames", "3",
                "--size", "64",
                "--tile-size", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("frame") == 3
        assert "k=" in out

    def test_writes_frames_when_outdir_given(self, tmp_path, capsys):
        code = main(
            [
                "video",
                "--frames", "2",
                "--size", "64",
                "--tile-size", "8",
                "--outdir", str(tmp_path),
            ]
        )
        assert code == 0
        assert len(list(tmp_path.glob("frame_*.png"))) == 2


class TestExport:
    def test_writes_report(self, tmp_path, monkeypatch, capsys):
        import repro.benchharness.export as export_mod

        monkeypatch.setattr(export_mod, "paper_grid", lambda profile: [(64, 4)])
        out = tmp_path / "EXP.md"
        code = main(["export", "--out", str(out)])
        assert code == 0
        assert out.read_text().startswith("# EXPERIMENTS")


class TestDemo:
    def test_writes_gallery(self, tmp_path, capsys):
        code = main(["demo", "--outdir", str(tmp_path), "--size", "64"])
        assert code == 0
        written = list(tmp_path.glob("*_mosaic.png"))
        assert len(written) == 4  # the four paper pairs


def write_manifest(path, jobs, defaults=None):
    data = {"jobs": jobs}
    data["defaults"] = defaults or {"target": "sailboat", "size": 64, "tile_size": 8}
    path.write_text(json.dumps(data))
    return path


class TestBatch:
    def shared_target_manifest(self, tmp_path):
        inputs = ["portrait", "peppers", "portrait", "barbara",
                  "portrait", "peppers", "baboon", "portrait"]
        jobs = [{"input": name} for name in inputs]
        jobs[0]["output"] = "first.png"
        return write_manifest(tmp_path / "jobs.json", jobs)

    def test_batch_completes_with_cache_hits(self, tmp_path, capsys):
        manifest = self.shared_target_manifest(tmp_path)
        outdir = tmp_path / "out"
        code = main(
            ["batch", "--manifest", str(manifest), "--outdir", str(outdir),
             "--workers", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("DONE") == 8
        assert (outdir / "first.png").exists()
        report = json.loads((outdir / "metrics.json").read_text())
        # The acceptance bar: ≥8 jobs sharing one target, hit rate > 0.5.
        assert report["cache"]["hit_rate"] > 0.5
        assert report["counters"]["jobs_done"] == 8
        assert len(report["jobs"]) == 8
        assert all(j["state"] == "DONE" for j in report["jobs"])
        assert report["histograms"]["queue_wait_seconds"]["count"] == 8

    def test_batch_is_reproducible_for_a_seed(self, tmp_path, capsys):
        manifest = self.shared_target_manifest(tmp_path)

        def run(outdir):
            code = main(
                ["batch", "--manifest", str(manifest), "--outdir", str(outdir),
                 "--workers", "2", "--seed", "42"]
            )
            assert code == 0
            report = json.loads((outdir / "metrics.json").read_text())
            return [(j["job_id"], j.get("total_error")) for j in report["jobs"]]

        first = run(tmp_path / "a")
        capsys.readouterr()
        second = run(tmp_path / "b")
        assert first == second

    def test_failing_job_sets_exit_code(self, tmp_path, capsys):
        manifest = write_manifest(
            tmp_path / "jobs.json",
            [{"input": "portrait"}, {"input": "no-such-file.png", "max_retries": 0}],
        )
        code = main(
            ["batch", "--manifest", str(manifest), "--outdir", str(tmp_path / "out"),
             "--workers", "1", "--retries", "0"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "DONE" in out  # the good job still completed

    def test_bad_manifest_raises_job_error(self, tmp_path):
        from repro.exceptions import JobError

        manifest = write_manifest(tmp_path / "jobs.json", [{"inptu": "portrait"}])
        with pytest.raises(JobError, match="inptu"):
            main(["batch", "--manifest", str(manifest)])

    def test_metrics_path_override(self, tmp_path, capsys):
        manifest = write_manifest(tmp_path / "jobs.json", [{"input": "portrait"}])
        metrics_path = tmp_path / "custom_metrics.json"
        code = main(
            ["batch", "--manifest", str(manifest), "--outdir", str(tmp_path / "out"),
             "--metrics", str(metrics_path), "--workers", "1"]
        )
        assert code == 0
        assert metrics_path.exists()


class TestSeedPlumbing:
    """Every randomised component must route through repro.utils.rng so
    batch jobs are reproducible (no direct entropy calls elsewhere)."""

    def test_no_direct_numpy_entropy_outside_rng_module(self):
        import pathlib

        import repro

        src_root = pathlib.Path(repro.__file__).parent
        offenders = []
        for path in src_root.rglob("*.py"):
            if path.name == "rng.py" and path.parent.name == "utils":
                continue
            text = path.read_text(encoding="utf-8")
            for needle in ("default_rng(", "np.random.seed", "random.Random("):
                if needle in text:
                    offenders.append(f"{path.relative_to(src_root)}: {needle}")
        assert not offenders, (
            "randomness must route through repro.utils.rng.make_rng/spawn_seeds: "
            + "; ".join(offenders)
        )

    def test_batch_parser_exposes_seed(self):
        args = build_parser().parse_args(
            ["batch", "--manifest", "jobs.json", "--seed", "7"]
        )
        assert args.seed == 7

    def test_batch_seed_defaults_to_zero(self):
        args = build_parser().parse_args(["batch", "--manifest", "jobs.json"])
        assert args.seed == 0
