"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.imaging import read_png, write_png


class TestParser:
    def test_generate_defaults(self):
        args = build_parser().parse_args(
            ["generate", "--input", "portrait", "--target", "sailboat"]
        )
        assert args.algorithm == "parallel"
        assert args.tile_size == 16

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_table_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--table", "9"])


class TestGenerate:
    def test_standard_names(self, tmp_path, capsys):
        out = tmp_path / "m.png"
        code = main(
            [
                "generate",
                "--input",
                "portrait",
                "--target",
                "sailboat",
                "--size",
                "64",
                "--tile-size",
                "8",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert read_png(out).shape == (64, 64)
        captured = capsys.readouterr().out
        assert "total error" in captured

    def test_file_inputs(self, tmp_path, rng):
        a = tmp_path / "a.png"
        b = tmp_path / "b.png"
        write_png(a, rng.integers(0, 256, size=(32, 32)).astype(np.uint8))
        write_png(b, rng.integers(0, 256, size=(32, 32)).astype(np.uint8))
        out = tmp_path / "out.png"
        code = main(
            [
                "generate",
                "--input", str(a),
                "--target", str(b),
                "--tile-size", "8",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert out.exists()

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="neither"):
            main(
                [
                    "generate",
                    "--input", str(tmp_path / "nope.png"),
                    "--target", "sailboat",
                ]
            )

    def test_shape_mismatch_errors(self, tmp_path, rng):
        a = tmp_path / "a.png"
        write_png(a, rng.integers(0, 256, size=(32, 32)).astype(np.uint8))
        with pytest.raises(SystemExit, match="identical shapes"):
            main(
                [
                    "generate",
                    "--input", str(a),
                    "--target", "sailboat",
                    "--size", "64",
                ]
            )

    def test_optimization_algorithm(self, tmp_path, capsys):
        out = tmp_path / "m.png"
        code = main(
            [
                "generate",
                "--input", "peppers",
                "--target", "barbara",
                "--size", "64",
                "--tile-size", "8",
                "--algorithm", "optimization",
                "--solver", "jv",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert "sweeps" not in capsys.readouterr().out


class TestVideo:
    def test_runs_and_reports_frames(self, capsys):
        code = main(
            [
                "video",
                "--frames", "3",
                "--size", "64",
                "--tile-size", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("frame") == 3
        assert "k=" in out

    def test_writes_frames_when_outdir_given(self, tmp_path, capsys):
        code = main(
            [
                "video",
                "--frames", "2",
                "--size", "64",
                "--tile-size", "8",
                "--outdir", str(tmp_path),
            ]
        )
        assert code == 0
        assert len(list(tmp_path.glob("frame_*.png"))) == 2


class TestExport:
    def test_writes_report(self, tmp_path, monkeypatch, capsys):
        import repro.benchharness.export as export_mod

        monkeypatch.setattr(export_mod, "paper_grid", lambda profile: [(64, 4)])
        out = tmp_path / "EXP.md"
        code = main(["export", "--out", str(out)])
        assert code == 0
        assert out.read_text().startswith("# EXPERIMENTS")


class TestDemo:
    def test_writes_gallery(self, tmp_path, capsys):
        code = main(["demo", "--outdir", str(tmp_path), "--size", "64"])
        assert code == 0
        written = list(tmp_path.glob("*_mosaic.png"))
        assert len(written) == 4  # the four paper pairs
