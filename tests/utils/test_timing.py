"""Tests for repro.utils.timing."""

from __future__ import annotations

import pytest

from repro.utils.timing import Stopwatch, TimingBreakdown, time_callable


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            sum(range(10_000))
        assert sw.elapsed > 0.0

    def test_elapsed_zero_before_use(self):
        assert Stopwatch().elapsed == 0.0


class TestTimingBreakdown:
    def test_add_accumulates(self):
        tb = TimingBreakdown()
        tb.add("a", 1.0)
        tb.add("a", 0.5)
        assert tb["a"] == pytest.approx(1.5)

    def test_total_sums_phases(self):
        tb = TimingBreakdown()
        tb.add("a", 1.0)
        tb.add("b", 2.0)
        assert tb.total == pytest.approx(3.0)

    def test_get_with_default(self):
        assert TimingBreakdown().get("missing") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            TimingBreakdown().add("a", -1.0)

    def test_measure_context_manager(self):
        tb = TimingBreakdown()
        with tb.measure("phase"):
            sum(range(1_000))
        assert tb["phase"] > 0.0

    def test_measure_accumulates_across_blocks(self):
        tb = TimingBreakdown()
        for _ in range(3):
            with tb.measure("p"):
                pass
        first = tb["p"]
        with tb.measure("p"):
            sum(range(10_000))
        assert tb["p"] > first

    def test_merged(self):
        a = TimingBreakdown({"x": 1.0})
        b = TimingBreakdown({"x": 2.0, "y": 3.0})
        merged = a.merged(b)
        assert merged["x"] == pytest.approx(3.0)
        assert merged["y"] == pytest.approx(3.0)
        # Inputs untouched.
        assert a["x"] == pytest.approx(1.0)


class TestTimeCallable:
    def test_returns_result_and_time(self):
        result, seconds = time_callable(lambda: 42, repeats=2)
        assert result == 42
        assert seconds >= 0.0

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            time_callable(lambda: None, repeats=0)
