"""Tests for repro.utils.timing."""

from __future__ import annotations

import pytest

from repro.utils.timing import Stopwatch, TimingBreakdown, time_callable


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            sum(range(10_000))
        assert sw.elapsed > 0.0

    def test_elapsed_zero_before_use(self):
        assert Stopwatch().elapsed == 0.0


class TestTimingBreakdown:
    def test_add_accumulates(self):
        tb = TimingBreakdown()
        tb.add("a", 1.0)
        tb.add("a", 0.5)
        assert tb["a"] == pytest.approx(1.5)

    def test_total_sums_phases(self):
        tb = TimingBreakdown()
        tb.add("a", 1.0)
        tb.add("b", 2.0)
        assert tb.total == pytest.approx(3.0)

    def test_get_with_default(self):
        assert TimingBreakdown().get("missing") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            TimingBreakdown().add("a", -1.0)

    def test_measure_context_manager(self):
        tb = TimingBreakdown()
        with tb.measure("phase"):
            sum(range(1_000))
        assert tb["phase"] > 0.0

    def test_measure_accumulates_across_blocks(self):
        tb = TimingBreakdown()
        for _ in range(3):
            with tb.measure("p"):
                pass
        first = tb["p"]
        with tb.measure("p"):
            sum(range(10_000))
        assert tb["p"] > first

    def test_merged(self):
        a = TimingBreakdown({"x": 1.0})
        b = TimingBreakdown({"x": 2.0, "y": 3.0})
        merged = a.merged(b)
        assert merged["x"] == pytest.approx(3.0)
        assert merged["y"] == pytest.approx(3.0)
        # Inputs untouched.
        assert a["x"] == pytest.approx(1.0)

    def test_merged_with_empty(self):
        a = TimingBreakdown({"x": 1.0})
        assert a.merged(TimingBreakdown()).phases == {"x": 1.0}
        assert TimingBreakdown().merged(a).phases == {"x": 1.0}

    def test_merged_is_commutative(self):
        a = TimingBreakdown({"x": 1.0, "y": 0.5})
        b = TimingBreakdown({"y": 2.0, "z": 3.0})
        assert a.merged(b).phases == pytest.approx(b.merged(a).phases)

    def test_merge_all(self):
        parts = [TimingBreakdown({"x": 1.0}), TimingBreakdown({"x": 2.0, "y": 1.0}),
                 TimingBreakdown({"y": 0.5})]
        merged = TimingBreakdown.merge_all(parts)
        assert merged.phases == pytest.approx({"x": 3.0, "y": 1.5})

    def test_merge_all_empty_iterable(self):
        assert TimingBreakdown.merge_all([]).phases == {}

    def test_as_dict_returns_copy(self):
        tb = TimingBreakdown({"x": 1.0})
        snapshot = tb.as_dict()
        snapshot["x"] = 99.0
        assert tb["x"] == pytest.approx(1.0)


class TestTimingBreakdownConcurrency:
    """The job service merges breakdowns from many workers into one."""

    def test_concurrent_adds_sum_exactly(self):
        import threading

        tb = TimingBreakdown()
        workers, iterations = 8, 1000

        def work() -> None:
            for _ in range(iterations):
                tb.add("shared", 0.001)

        threads = [threading.Thread(target=work) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tb["shared"] == pytest.approx(workers * iterations * 0.001)

    def test_concurrent_merge_into_shared_breakdown(self):
        import threading

        shared = TimingBreakdown()
        per_worker = TimingBreakdown({"step2": 0.25, "step3": 0.5})

        def merge() -> None:
            for phase, seconds in per_worker.as_dict().items():
                shared.add(phase, seconds)

        threads = [threading.Thread(target=merge) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert shared["step2"] == pytest.approx(16 * 0.25)
        assert shared["step3"] == pytest.approx(16 * 0.5)

    def test_picklable_across_process_boundary(self):
        import pickle

        tb = TimingBreakdown({"x": 1.0})
        clone = pickle.loads(pickle.dumps(tb))
        assert clone.phases == {"x": 1.0}
        clone.add("x", 1.0)  # the lock was re-created on unpickle
        assert clone["x"] == pytest.approx(2.0)


class TestTimeCallable:
    def test_returns_result_and_time(self):
        result, seconds = time_callable(lambda: 42, repeats=2)
        assert result == 42
        assert seconds >= 0.0

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            time_callable(lambda: None, repeats=0)
