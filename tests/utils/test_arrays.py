"""Tests for the shared array helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.arrays import cached_positions


class TestCachedPositions:
    def test_values(self):
        np.testing.assert_array_equal(cached_positions(5), np.arange(5))
        assert cached_positions(5).dtype == np.intp

    def test_shared_instance(self):
        assert cached_positions(64) is cached_positions(64)

    def test_read_only(self):
        positions = cached_positions(8)
        assert not positions.flags.writeable
        with pytest.raises(ValueError):
            positions[0] = 7

    def test_zero_size(self):
        assert cached_positions(0).size == 0
