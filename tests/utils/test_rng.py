"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng


def test_same_seed_same_stream():
    a = make_rng(7).integers(0, 1000, size=10)
    b = make_rng(7).integers(0, 1000, size=10)
    assert (a == b).all()


def test_different_seeds_differ():
    a = make_rng(1).integers(0, 1_000_000, size=20)
    b = make_rng(2).integers(0, 1_000_000, size=20)
    assert (a != b).any()


def test_generator_passes_through():
    gen = np.random.default_rng(0)
    assert make_rng(gen) is gen


def test_none_gives_generator():
    assert isinstance(make_rng(None), np.random.Generator)
