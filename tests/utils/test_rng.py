"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np

import pytest

from repro.utils.rng import make_rng, spawn_seeds


def test_spawn_seeds_deterministic():
    assert spawn_seeds(7, 5) == spawn_seeds(7, 5)


def test_spawn_seeds_differ_across_parents_and_siblings():
    family = spawn_seeds(1, 8)
    assert len(set(family)) == 8
    assert family != spawn_seeds(2, 8)


def test_spawn_seeds_empty():
    assert spawn_seeds(0, 0) == []


def test_spawn_seeds_rejects_negative_count():
    with pytest.raises(ValueError, match="n must be"):
        spawn_seeds(0, -1)


def test_spawn_seeds_feed_make_rng():
    seeds = spawn_seeds(3, 2)
    a = make_rng(seeds[0]).integers(0, 1_000_000, size=10)
    b = make_rng(seeds[1]).integers(0, 1_000_000, size=10)
    assert (a != b).any()


def test_same_seed_same_stream():
    a = make_rng(7).integers(0, 1000, size=10)
    b = make_rng(7).integers(0, 1000, size=10)
    assert (a == b).all()


def test_different_seeds_differ():
    a = make_rng(1).integers(0, 1_000_000, size=20)
    b = make_rng(2).integers(0, 1_000_000, size=20)
    assert (a != b).any()


def test_generator_passes_through():
    gen = np.random.default_rng(0)
    assert make_rng(gen) is gen


def test_none_gives_generator():
    assert isinstance(make_rng(None), np.random.Generator)
