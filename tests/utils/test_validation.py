"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_error_matrix,
    check_gray_image,
    check_image,
    check_permutation,
    check_positive_int,
    check_power_compatible,
)


class TestCheckPositiveInt:
    def test_accepts_python_int(self):
        assert check_positive_int(5, "x") == 5

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(7), "x") == 7

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="positive"):
            check_positive_int(-3, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError, match="integer"):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError, match="integer"):
            check_positive_int(3.0, "x")

    def test_error_message_names_argument(self):
        with pytest.raises(ValidationError, match="myarg"):
            check_positive_int(-1, "myarg")


class TestCheckImage:
    def test_accepts_gray_uint8(self):
        img = np.zeros((4, 6), dtype=np.uint8)
        assert check_image(img) is img

    def test_accepts_color(self):
        img = np.zeros((4, 6, 3), dtype=np.uint8)
        assert check_image(img).shape == (4, 6, 3)

    def test_converts_int_in_range(self):
        img = np.array([[0, 255], [128, 7]], dtype=np.int32)
        out = check_image(img)
        assert out.dtype == np.uint8
        assert out[0, 1] == 255

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError, match=r"\[0, 255\]"):
            check_image(np.array([[300]], dtype=np.int32))

    def test_rejects_negative_values(self):
        with pytest.raises(ValidationError, match=r"\[0, 255\]"):
            check_image(np.array([[-1]], dtype=np.int32))

    def test_rejects_float_dtype(self):
        with pytest.raises(ValidationError, match="integer"):
            check_image(np.zeros((4, 4), dtype=np.float64))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError, match="dimensions"):
            check_image(np.zeros(5, dtype=np.uint8))

    def test_rejects_two_channels(self):
        with pytest.raises(ValidationError, match="3 channels"):
            check_image(np.zeros((4, 4, 2), dtype=np.uint8))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            check_image(np.zeros((0, 4), dtype=np.uint8))

    def test_rejects_non_array(self):
        with pytest.raises(ValidationError, match="numpy array"):
            check_image([[1, 2], [3, 4]])


class TestCheckGrayImage:
    def test_accepts_gray(self):
        assert check_gray_image(np.zeros((3, 3), dtype=np.uint8)).ndim == 2

    def test_rejects_color(self):
        with pytest.raises(ValidationError, match="grayscale"):
            check_gray_image(np.zeros((3, 3, 3), dtype=np.uint8))


class TestCheckErrorMatrix:
    def test_accepts_int_square(self):
        m = check_error_matrix(np.ones((3, 3), dtype=np.int32))
        assert m.dtype == np.int64

    def test_rounds_float_matrix(self):
        m = check_error_matrix(np.array([[1.4, 2.6], [0.0, 3.5]]))
        assert m[0, 0] == 1 and m[0, 1] == 3

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            check_error_matrix(np.array([[np.nan, 1.0], [1.0, 1.0]]))

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="non-negative"):
            check_error_matrix(np.array([[-1, 0], [0, 0]], dtype=np.int64))

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError, match="square"):
            check_error_matrix(np.zeros((2, 3), dtype=np.int64))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            check_error_matrix(np.zeros((0, 0), dtype=np.int64))

    def test_rejects_string_dtype(self):
        with pytest.raises(ValidationError, match="numeric"):
            check_error_matrix(np.array([["a", "b"], ["c", "d"]]))


class TestCheckPermutation:
    def test_accepts_identity(self):
        p = check_permutation(np.arange(5))
        assert p.dtype == np.intp

    def test_accepts_shuffled(self):
        check_permutation(np.array([2, 0, 1]))

    def test_rejects_repeat(self):
        with pytest.raises(ValidationError, match="bijection"):
            check_permutation(np.array([0, 0, 2]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError, match=r"\[0, 2\]"):
            check_permutation(np.array([0, 1, 3]))

    def test_rejects_negative_entry(self):
        with pytest.raises(ValidationError):
            check_permutation(np.array([0, -1, 2]))

    def test_rejects_wrong_size(self):
        with pytest.raises(ValidationError, match="length 4"):
            check_permutation(np.arange(3), size=4)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError, match="1-D"):
            check_permutation(np.zeros((2, 2), dtype=np.intp))

    def test_rejects_float(self):
        with pytest.raises(ValidationError, match="integer"):
            check_permutation(np.array([0.0, 1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            check_permutation(np.array([], dtype=np.intp))


class TestCheckPowerCompatible:
    def test_divides(self):
        assert check_power_compatible(512, 16) == 32

    def test_rejects_nondivisor(self):
        with pytest.raises(ValidationError, match="does not evenly divide"):
            check_power_compatible(100, 16)
