"""Kind-level shortlist metrics: both job kinds feed the same counters.

The sparse mosaic pipeline (:mod:`repro.cost.sparse`) and the library
engine's cluster shortlister report their work through one meta shape —
``meta["shortlist"]`` with ``pairs_evaluated`` and ``fallback`` — and
the worker pool folds either into the shared
``shortlist_pairs_evaluated`` / ``shortlist_fallback_total`` counters.
A dashboard watching those two numbers sees all shortlist work without
caring which engine ran.
"""

from __future__ import annotations

import pytest

from repro.imaging import save_image
from repro.library import LibraryIndex, synthetic_target, write_synthetic_library
from repro.service.jobs import JobSpec, JobState
from repro.service.metrics import MetricsRegistry
from repro.service.workers import WorkerPool


@pytest.fixture(scope="module")
def library_env(tmp_path_factory):
    root = tmp_path_factory.mktemp("shortlist-metrics")
    libdir = root / "lib"
    write_synthetic_library(libdir, 40, size=16, seed=11)
    target = root / "target.pgm"
    save_image(target, synthetic_target(64, seed=6))
    index, _ = LibraryIndex.from_directory(libdir, tile_size=8, thumb_size=16)
    npz = root / "lib.npz"
    index.save(npz)
    return {"npz": str(npz), "target": str(target)}


def _run_one(spec):
    metrics = MetricsRegistry()
    with WorkerPool(workers=1, metrics=metrics) as pool:
        record = pool.run([spec])[0]
    assert record.state is JobState.DONE, record.error
    return record, metrics


def test_mosaic_and_library_jobs_share_the_shortlist_counters(library_env):
    mosaic_spec = JobSpec(
        input="portrait",
        target="sailboat",
        size=64,
        tile_size=8,
        shortlist_top_k=8,
        seed=3,
    )
    library_spec = JobSpec(
        kind="library",
        input=library_env["npz"],
        target=library_env["target"],
        size=64,
        tile_size=8,
        thumb_size=16,
        top_k=8,
        seed=4,
    )
    for spec in (mosaic_spec, library_spec):
        record, metrics = _run_one(spec)
        summary = record.summary()
        assert "shortlist" in summary, f"{spec.kind} job lost its shortlist meta"
        shortlist = summary["shortlist"]
        # One shared shape across kinds.
        assert shortlist["pairs_evaluated"] > 0
        assert shortlist["fallback"] >= 0
        assert shortlist["top_k"] > 0
        assert shortlist["pairs_evaluated"] <= shortlist["pairs_total"]
        # ... and one shared pair of pool counters.
        assert (
            metrics.counter("shortlist_pairs_evaluated").value
            == shortlist["pairs_evaluated"]
        )
        assert (
            metrics.counter("shortlist_fallback_total").value
            == shortlist["fallback"]
        )


def test_dense_mosaic_jobs_do_not_touch_the_counters():
    record, metrics = _run_one(
        JobSpec(input="portrait", target="sailboat", size=64, tile_size=8)
    )
    assert "shortlist" not in record.summary()
    assert metrics.counter("shortlist_pairs_evaluated").value == 0
    assert metrics.counter("shortlist_fallback_total").value == 0


def test_shortlist_counters_accumulate_across_jobs():
    metrics = MetricsRegistry()
    spec = JobSpec(
        input="portrait",
        target="sailboat",
        size=64,
        tile_size=8,
        shortlist_top_k=8,
        seed=3,
    )
    with WorkerPool(workers=1, metrics=metrics) as pool:
        records = pool.run([spec, spec])
    assert all(r.state is JobState.DONE for r in records)
    per_job = records[0].summary()["shortlist"]["pairs_evaluated"]
    assert (
        metrics.counter("shortlist_pairs_evaluated").value == 2 * per_job
    )


def test_bad_shortlist_knobs_surface_at_submit_time():
    from repro.exceptions import JobError

    with pytest.raises(JobError, match="shortlist_top_k"):
        JobSpec(input="a", target="b", shortlist_top_k=-1)
    with pytest.raises(JobError, match="sketch"):
        JobSpec(input="a", target="b", shortlist_top_k=4, sketch="wavelet")
