"""Result meta must survive process-pool pickling round-trips.

Process executors ship the runner *to* the worker and the
``MosaicResult`` *back* — both cross a pickle boundary.  The counters
the pool folds from result meta (``shortlist_*``, ``batch_meta_*``)
only work if the meta blocks survive that trip, and the runner only
works if its un-picklable batch coordinator is dropped on the way out.
This suite pins both directions.
"""

from __future__ import annotations

import pickle

import pytest

from repro.service.jobs import JobSpec, JobState
from repro.service.metrics import MetricsRegistry
from repro.service.workers import MosaicJobRunner, WorkerPool


def _sparse_spec(**kwargs) -> JobSpec:
    base = dict(
        input="portrait",
        target="sailboat",
        size=64,
        tile_size=16,
        shortlist_top_k=8,
        seed=3,
    )
    base.update(kwargs)
    return JobSpec(**base)


def test_runner_pickle_drops_the_batcher():
    """The live coordinator (locks + conditions) must not cross a
    process boundary; the clone falls back to solo launches."""
    from repro.service.batching import Step2BatchCoordinator

    runner = MosaicJobRunner(default_backend="numpy")
    runner.batcher = Step2BatchCoordinator(window_s=0.01)
    clone = pickle.loads(pickle.dumps(runner))
    assert clone.batcher is None
    assert clone.default_backend == "numpy"


def test_result_meta_survives_a_pickle_round_trip():
    """Direct check on the payload the process executor ships back."""
    from repro.mosaic.generator import PhotomosaicGenerator
    from repro.service.batching import Step2BatchCoordinator, step2_fingerprint
    from repro.service.workers import resolve_image

    batcher = Step2BatchCoordinator(window_s=0.01)
    batcher.announce(step2_fingerprint(_sparse_spec()))
    generator = PhotomosaicGenerator(
        _sparse_spec().to_config(), batcher=batcher
    )
    result = generator.generate(
        resolve_image("portrait", 64), resolve_image("sailboat", 64)
    )
    assert result.meta["batch"]["size"] == 1
    assert result.meta["shortlist"]["pairs_evaluated"] > 0
    clone = pickle.loads(pickle.dumps(result))
    assert clone.meta["batch"] == result.meta["batch"]
    assert clone.meta["shortlist"] == result.meta["shortlist"]


def test_process_pool_folds_shortlist_counters():
    """The real boundary: a process worker computes the job, the parent
    pool still sees the shortlist work in its registry."""
    metrics = MetricsRegistry()
    with WorkerPool(
        workers=1, kind="process", metrics=metrics, default_timeout=120.0
    ) as pool:
        record = pool.run([_sparse_spec()])[0]
    assert record.state is JobState.DONE, record.error
    shortlist = record.summary()["shortlist"]
    assert shortlist["pairs_evaluated"] > 0
    assert (
        metrics.counter("shortlist_pairs_evaluated").value
        == shortlist["pairs_evaluated"]
    )
    # Process workers have no batcher, so no batch meta and no
    # batch_meta_* counters — solo fallback, not a crash.
    assert "batch" not in record.summary()
    assert metrics.counter("batch_meta_jobs_total").value == 0


def test_thread_pool_folds_batch_meta_counters():
    """meta["batch"] folds into batch_meta_* exactly once per job."""
    metrics = MetricsRegistry()
    specs = [_sparse_spec(name=f"job-{i}") for i in range(2)]
    with WorkerPool(
        workers=2, metrics=metrics, batch_window=1.0
    ) as pool:
        records = pool.run(specs)
    for record in records:
        assert record.state is JobState.DONE, record.error
        assert record.summary()["batch"]["size"] >= 1
    counters = metrics.as_dict()["counters"]
    assert counters["batch_meta_jobs_total"] == 2
    # Both jobs share one launch when the rendezvous forms; either way
    # the shared counter can never exceed the per-job one.
    assert counters.get("batch_meta_shared_total", 0) <= counters[
        "batch_meta_jobs_total"
    ]
