"""The ``kind="library"`` job type end to end through the worker pool."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.exceptions import JobError
from repro.imaging import load_image, save_image
from repro.library import (
    LibraryIndex,
    synthetic_library_images,
    synthetic_target,
    write_synthetic_library,
)
from repro.library.engine import PHASES, LibraryMosaicResult
from repro.service.cache import ArtifactCache
from repro.service.jobs import JOB_KINDS, JobSpec, JobState
from repro.service.metrics import MetricsRegistry
from repro.service.workers import MosaicJobRunner, WorkerPool


@pytest.fixture(scope="module")
def library_env(tmp_path_factory):
    """A small on-disk library, a saved index and a target image."""
    root = tmp_path_factory.mktemp("library-jobs")
    libdir = root / "lib"
    write_synthetic_library(libdir, 40, size=16, seed=11)
    target = root / "target.pgm"
    save_image(target, synthetic_target(64, seed=6))
    index, _ = LibraryIndex.from_directory(libdir, tile_size=8, thumb_size=16)
    npz = root / "lib.npz"
    index.save(npz)
    return {"libdir": str(libdir), "npz": str(npz), "target": str(target)}


def library_spec(env, name="lib-job", **overrides):
    base = dict(
        kind="library",
        input=env["npz"],
        target=env["target"],
        size=64,
        tile_size=8,
        thumb_size=16,
        top_k=8,
        seed=4,
        name=name,
    )
    base.update(overrides)
    return JobSpec(**base)


class TestSpecValidation:
    def test_kinds_constant(self):
        assert JOB_KINDS == ("mosaic", "library")

    def test_default_kind_is_mosaic(self):
        assert JobSpec(input="portrait", target="sailboat").kind == "mosaic"

    def test_unknown_kind_rejected(self):
        with pytest.raises(JobError, match="unknown job kind"):
            JobSpec(input="a", target="b", kind="collage")

    def test_unknown_backend_rejected(self):
        with pytest.raises(JobError, match="unknown backend"):
            JobSpec(input="a", target="b", backend="tpu")

    def test_bad_library_knobs_surface_at_submit_time(self):
        with pytest.raises(JobError, match="top_k"):
            JobSpec(input="a", target="b", kind="library", top_k=0)
        with pytest.raises(JobError, match="assigner"):
            JobSpec(input="a", target="b", kind="library", assigner="simplex")
        with pytest.raises(JobError, match="color_adjust"):
            JobSpec(input="a", target="b", kind="library", color_adjust="clahe")

    def test_library_knobs_do_not_gate_mosaic_jobs(self):
        # A mosaic spec never materialises a LibraryConfig, so library
        # defaults it carries cannot fail it.
        JobSpec(input="portrait", target="sailboat", kind="mosaic", top_k=16)

    def test_backend_resolution_order(self):
        explicit = JobSpec(input="a", target="b", backend="numpy")
        deferred = JobSpec(input="a", target="b")
        assert explicit.resolve_backend("auto") == "numpy"  # spec wins
        assert deferred.resolve_backend("auto") == "auto"  # runner default
        assert deferred.resolve_backend(None) == "numpy"  # final fallback

    def test_backend_threads_into_configs(self):
        spec = JobSpec(
            input="a", target="b", kind="library", backend="numpy", thumb_size=16
        )
        assert spec.to_library_config().array_backend == "numpy"
        assert spec.to_config().array_backend == "numpy"
        deferred = JobSpec(input="a", target="b", kind="library", thumb_size=16)
        assert deferred.to_library_config("auto").array_backend == "auto"


class TestPoolExecution:
    def test_library_job_runs_to_done(self, library_env):
        runner = MosaicJobRunner()
        with WorkerPool(workers=1, runner=runner, seed=0) as pool:
            record = pool.submit(library_spec(library_env))
            pool.join()
        assert record.state is JobState.DONE
        assert isinstance(record.result, LibraryMosaicResult)
        assert record.result.image.shape == (64, 64)

    def test_summary_carries_library_block(self, library_env):
        with WorkerPool(workers=1, runner=MosaicJobRunner(), seed=0) as pool:
            record = pool.submit(library_spec(library_env))
            pool.join()
        summary = record.summary()
        assert summary["state"] == "DONE"
        assert summary["sweeps"] is None
        lib = summary["library"]
        assert lib["library_size"] == 40
        assert lib["shortlist_k"] == 8
        assert set(PHASES) <= set(summary["timings"])

    def test_event_stream_order(self, library_env):
        events = []

        def observer(record, kind, payload):
            events.append((kind, payload))

        with WorkerPool(workers=1, runner=MosaicJobRunner(), seed=0) as pool:
            pool.submit(library_spec(library_env), observer=observer)
            pool.join()
        kinds = [k for k, _ in events]
        assert kinds == ["state", "phase", "phase", "phase", "phase", "state"]
        assert [p["phase"] for k, p in events if k == "phase"] == list(PHASES)
        assert events[0][1]["state"] == "RUNNING"
        assert events[-1][1]["state"] == "DONE"

    def test_deterministic_across_pools(self, library_env):
        def digest():
            with WorkerPool(workers=1, runner=MosaicJobRunner(), seed=0) as pool:
                record = pool.submit(library_spec(library_env))
                pool.join()
            return hashlib.sha256(record.result.image.tobytes()).hexdigest()

        assert digest() == digest()

    def test_directory_ingest_metrics_fold_in(self, library_env):
        metrics = MetricsRegistry()
        cache = ArtifactCache()
        runner = MosaicJobRunner(cache=cache)
        with WorkerPool(
            workers=1, runner=runner, metrics=metrics, seed=0
        ) as pool:
            pool.run(
                [
                    library_spec(library_env, name="cold", input=library_env["libdir"]),
                    library_spec(library_env, name="warm", input=library_env["libdir"]),
                ]
            )
        data = metrics.as_dict()
        assert data["counters"]["library_ingest_misses"] == 40
        assert data["counters"]["library_ingest_hits"] == 40
        assert data["histograms"]["library_shortlist_size"]["count"] == 2
        assert data["histograms"]["library_tile_reuse_max"]["count"] == 2

    def test_output_is_saved(self, library_env, tmp_path):
        runner = MosaicJobRunner(outdir=str(tmp_path))
        with WorkerPool(workers=1, runner=runner, seed=0) as pool:
            record = pool.submit(
                library_spec(library_env, output="mosaic.pgm")
            )
            pool.join()
        assert record.state is JobState.DONE
        written = load_image(tmp_path / "mosaic.pgm")
        assert np.array_equal(written, record.result.image)

    def test_missing_library_fails_cleanly(self, library_env, tmp_path):
        spec = library_spec(
            library_env, input=str(tmp_path / "nope"), max_retries=0
        )
        with WorkerPool(workers=1, runner=MosaicJobRunner(), seed=0) as pool:
            record = pool.submit(spec)
            pool.join()
        assert record.state is JobState.FAILED
        assert "does not exist" in record.error

    def test_runner_default_backend_reaches_engine(self, library_env):
        # "auto" resolves to numpy on this machine; the engine reports
        # the resolved backend in its meta, proving the default threaded
        # runner -> spec -> LibraryConfig -> shortlister.
        runner = MosaicJobRunner(default_backend="auto")
        with WorkerPool(workers=1, runner=runner, seed=0) as pool:
            record = pool.submit(library_spec(library_env))
            pool.join()
        assert record.state is JobState.DONE
        assert record.result.meta["library"]["backend"] == "numpy"
        assert record.result.config.array_backend == "auto"

    def test_mosaic_jobs_unaffected(self):
        with WorkerPool(workers=1, runner=MosaicJobRunner(), seed=0) as pool:
            record = pool.submit(
                JobSpec(
                    input="portrait", target="sailboat", size=48, tile_size=8
                )
            )
            pool.join()
        assert record.state is JobState.DONE
        assert record.result.image.shape == (48, 48)
