"""Tests for the job model (specs, records, states, IDs)."""

from __future__ import annotations

import pickle

import pytest

from repro.exceptions import JobError
from repro.mosaic.config import MosaicConfig
from repro.service.jobs import JobRecord, JobSpec, JobState


def spec(**overrides) -> JobSpec:
    base = dict(input="portrait", target="sailboat", size=64, tile_size=8)
    base.update(overrides)
    return JobSpec(**base)


class TestJobSpec:
    def test_deterministic_ids(self):
        assert spec().job_id(0) == spec().job_id(0)

    def test_index_distinguishes_identical_specs(self):
        assert spec().job_id(0) != spec().job_id(1)

    def test_content_distinguishes_specs(self):
        assert spec().job_id(0) != spec(tile_size=16).job_id(0)

    def test_id_format(self):
        job_id = spec().job_id(3)
        assert job_id.startswith("job-")
        assert len(job_id) == len("job-") + 12

    def test_to_config(self):
        config = spec(algorithm="optimization", solver="jv", metric="ssd").to_config()
        assert config == MosaicConfig(
            tile_size=8, algorithm="optimization", solver="jv", metric="ssd"
        )

    def test_rejects_empty_images(self):
        with pytest.raises(JobError, match="non-empty"):
            JobSpec(input="", target="sailboat")

    def test_rejects_bad_timeout(self):
        with pytest.raises(JobError, match="timeout"):
            spec(timeout=0.0)

    def test_rejects_negative_retries(self):
        with pytest.raises(JobError, match="max_retries"):
            spec(max_retries=-1)

    def test_picklable(self):
        s = spec(priority=3, timeout=1.0)
        assert pickle.loads(pickle.dumps(s)) == s

    def test_field_names_cover_manifest_keys(self):
        names = JobSpec.field_names()
        assert {"input", "target", "priority", "timeout", "seed"} <= names


class TestJobRecord:
    def test_lifecycle_happy_path(self):
        record = JobRecord(spec=spec(), job_id="job-x")
        assert record.state is JobState.PENDING
        record.transition(JobState.RUNNING)
        record.transition(JobState.DONE)
        assert record.queue_wait is not None
        assert record.latency is not None
        assert record.latency >= record.queue_wait

    def test_retry_cycle(self):
        record = JobRecord(spec=spec(), job_id="job-x")
        record.transition(JobState.RUNNING)
        record.transition(JobState.PENDING)  # retry
        record.transition(JobState.RUNNING)
        record.transition(JobState.FAILED)
        assert record.state is JobState.FAILED

    def test_illegal_transition_rejected(self):
        record = JobRecord(spec=spec(), job_id="job-x")
        with pytest.raises(JobError, match="illegal transition"):
            record.transition(JobState.DONE)  # PENDING -> DONE skips RUNNING

    def test_terminal_states_are_final(self):
        record = JobRecord(spec=spec(), job_id="job-x")
        record.transition(JobState.CANCELLED)
        with pytest.raises(JobError, match="illegal transition"):
            record.transition(JobState.RUNNING)

    def test_summary_schema(self):
        record = JobRecord(spec=spec(name="myjob"), job_id="job-x")
        record.transition(JobState.RUNNING)
        record.error = "boom"
        record.transition(JobState.FAILED)
        summary = record.summary()
        assert summary["name"] == "myjob"
        assert summary["state"] == "FAILED"
        assert summary["error"] == "boom"
        assert summary["latency_s"] > 0

    def test_picklable_without_lock(self):
        record = JobRecord(spec=spec(), job_id="job-x")
        clone = pickle.loads(pickle.dumps(record))
        clone.transition(JobState.RUNNING)  # lock was re-created
        assert clone.state is JobState.RUNNING
