"""Tests for the zero-copy (memory-mapped) disk-cache read path."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.service.diskcache import DiskCacheStore
from repro.utils.arrays import mmap_npz_arrays


@pytest.fixture()
def store(tmp_path) -> DiskCacheStore:
    return DiskCacheStore(tmp_path / "cache")


class TestMmapNpzArrays:
    def test_members_match_savez(self, tmp_path, rng):
        path = tmp_path / "p.npz"
        a = rng.integers(0, 1000, size=(9, 4)).astype(np.int64)
        b = rng.random((3, 3, 2)).astype(np.float32)
        np.savez(path, a0=a, a1=b)
        members = mmap_npz_arrays(path)
        np.testing.assert_array_equal(members["a0"], a)
        np.testing.assert_array_equal(members["a1"], b)

    def test_views_are_zero_copy(self, tmp_path):
        path = tmp_path / "p.npz"
        np.savez(path, a0=np.arange(16))
        array = mmap_npz_arrays(path)["a0"]
        # Backed by the mapping, not a heap copy, and not writable.
        assert not array.flags.owndata
        assert not array.flags.writeable

    def test_fortran_order_preserved(self, tmp_path):
        path = tmp_path / "p.npz"
        a = np.asfortranarray(np.arange(12).reshape(3, 4))
        np.savez(path, a0=a)
        out = mmap_npz_arrays(path)["a0"]
        np.testing.assert_array_equal(out, a)
        assert out.flags.f_contiguous

    def test_compressed_member_rejected(self, tmp_path):
        path = tmp_path / "p.npz"
        np.savez_compressed(path, a0=np.arange(64))
        with pytest.raises(ValueError, match="compressed"):
            mmap_npz_arrays(path)


class TestWarmHitsStopCopying:
    def test_array_warm_hit_copies_nothing(self, store, rng):
        matrix = rng.integers(0, 10_000, size=(32, 32)).astype(np.int64)
        store.put("matrix/a", matrix)
        got = store.get("matrix/a")
        np.testing.assert_array_equal(got, matrix)
        assert not got.flags.writeable
        stats = store.stats
        assert stats.mmap_hits == 1
        assert stats.hits == 1
        assert stats.copied_bytes == 0

    def test_tuple_with_none_layout(self, store, rng):
        matrix = rng.random((8, 8))
        store.put("tiles/t", (matrix, None))
        got = store.get("tiles/t")
        assert isinstance(got, tuple) and got[1] is None
        np.testing.assert_array_equal(got[0], matrix)
        assert store.stats.copied_bytes == 0

    def test_pickle_layout_still_copies(self, store):
        store.put("misc/obj", {"not": "arrays"})
        assert store.get("misc/obj") == {"not": "arrays"}
        stats = store.stats
        assert stats.mmap_hits == 0
        assert stats.copied_bytes > 0

    def test_mmap_mode_none_restores_copying(self, tmp_path, rng):
        store = DiskCacheStore(tmp_path / "cache", mmap_mode=None)
        matrix = rng.random((16, 16))
        store.put("matrix/b", matrix)
        got = store.get("matrix/b")
        np.testing.assert_array_equal(got, matrix)
        stats = store.stats
        assert stats.mmap_hits == 0
        assert stats.copied_bytes > 0

    def test_invalid_mmap_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mmap_mode"):
            DiskCacheStore(tmp_path / "cache", mmap_mode="r+")


class TestIntegrityUnderMmap:
    def _payload_path(self, store: DiskCacheStore, key: str) -> str:
        return store._entry_paths(store._algo(key), store._digest(key))[0]

    def test_bit_flip_quarantines(self, store, rng):
        store.put("matrix/c", rng.random((16, 16)))
        path = self._payload_path(store, "matrix/c")
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        assert store.get("matrix/c") is None
        stats = store.stats
        assert stats.corruptions == 1
        assert stats.misses == 1
        assert os.listdir(os.path.join(store.root, "quarantine"))

    def test_truncation_quarantines(self, store, rng):
        store.put("matrix/d", rng.random((16, 16)))
        path = self._payload_path(store, "matrix/d")
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        assert store.get("matrix/d") is None
        assert store.stats.corruptions == 1

    def test_pickled_store_keeps_mmap_mode(self, tmp_path, rng):
        store = DiskCacheStore(tmp_path / "cache", mmap_mode=None)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.mmap_mode is None
        matrix = rng.random((8, 8))
        store.put("matrix/e", matrix)
        np.testing.assert_array_equal(clone.get("matrix/e"), matrix)

    def test_get_or_compute_hits_mmap_path(self, store, rng):
        matrix = rng.random((8, 8))
        calls = []

        def compute():
            calls.append(1)
            return matrix

        first = store.get_or_compute("matrix/f", compute)
        second = store.get_or_compute("matrix/f", compute)
        assert len(calls) == 1
        np.testing.assert_array_equal(first, matrix)
        np.testing.assert_array_equal(second, matrix)
        assert store.stats.mmap_hits == 1  # the warm read
