"""Tests for the content-addressed artifact cache."""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.service.cache import (
    ArtifactCache,
    error_matrix_key,
    image_fingerprint,
    tile_grid_key,
)


class TestFingerprints:
    def test_content_addressed(self, rng):
        image = rng.integers(0, 256, size=(16, 16)).astype(np.uint8)
        assert image_fingerprint(image) == image_fingerprint(image.copy())

    def test_different_content_differs(self, rng):
        a = rng.integers(0, 256, size=(16, 16)).astype(np.uint8)
        b = a.copy()
        b[0, 0] ^= 0xFF
        assert image_fingerprint(a) != image_fingerprint(b)

    def test_shape_matters(self):
        flat = np.zeros(256, dtype=np.uint8).reshape(16, 16)
        tall = np.zeros(256, dtype=np.uint8).reshape(32, 8)
        assert image_fingerprint(flat) != image_fingerprint(tall)

    def test_dtype_matters(self):
        # Same shape, same raw bytes (all zero), different dtype.
        a = np.zeros((4, 4), dtype=np.uint8)
        b = np.zeros((4, 4), dtype=np.int8)
        assert image_fingerprint(a) != image_fingerprint(b)

    def test_key_schemes_disjoint(self):
        assert tile_grid_key("abc", 8) != error_matrix_key("abc", "abc", 8, "sad")

    def test_transform_flag_changes_matrix_key(self):
        plain = error_matrix_key("a", "b", 8, "sad", allow_transforms=False)
        dihedral = error_matrix_key("a", "b", 8, "sad", allow_transforms=True)
        assert plain != dihedral


class TestLookupAndStats:
    def test_miss_then_hit(self):
        cache = ArtifactCache(max_bytes=1 << 20)
        assert cache.get("k") is None
        cache.put("k", np.arange(10))
        assert (cache.get("k") == np.arange(10)).all()
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_get_or_compute_computes_once(self):
        cache = ArtifactCache(max_bytes=1 << 20)
        calls = []

        def compute():
            calls.append(1)
            return np.ones(4)

        first = cache.get_or_compute("k", compute)
        second = cache.get_or_compute("k", compute)
        assert (first == second).all()
        assert len(calls) == 1

    def test_contains_does_not_touch_stats(self):
        cache = ArtifactCache(max_bytes=1 << 20)
        cache.put("k", np.ones(2))
        assert cache.contains("k")
        assert not cache.contains("other")
        stats = cache.stats
        assert stats.hits == 0 and stats.misses == 0

    def test_clear(self):
        cache = ArtifactCache(max_bytes=1 << 20)
        cache.put("k", np.ones(8))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.current_bytes == 0


class TestEviction:
    def test_lru_eviction_respects_budget(self):
        cache = ArtifactCache(max_bytes=3000)
        for i in range(4):
            cache.put(f"k{i}", np.zeros(128, dtype=np.float64))  # 1024 B each
        assert cache.stats.current_bytes <= 3000
        assert cache.stats.evictions >= 1
        assert not cache.contains("k0")  # oldest went first
        assert cache.contains("k3")

    def test_get_refreshes_lru_order(self):
        cache = ArtifactCache(max_bytes=2100)
        cache.put("a", np.zeros(128))  # 1024 B
        cache.put("b", np.zeros(128))
        cache.get("a")  # refresh: now b is the LRU entry
        cache.put("c", np.zeros(128))
        assert cache.contains("a")
        assert not cache.contains("b")

    def test_oversized_entry_admitted_alone(self):
        cache = ArtifactCache(max_bytes=100)
        cache.put("big", np.zeros(1000))
        assert cache.contains("big")

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            ArtifactCache(max_bytes=0)


class TestSpill:
    def test_evicted_entries_reload_from_disk(self, tmp_path):
        cache = ArtifactCache(max_bytes=2100, spill_dir=tmp_path)
        payload = np.arange(128, dtype=np.float64)
        cache.put("a", payload)
        cache.put("b", np.zeros(128))
        cache.put("c", np.zeros(128))  # evicts + spills "a"
        assert cache.stats.spill_writes >= 1
        reloaded = cache.get("a")
        assert reloaded is not None
        assert (reloaded == payload).all()
        assert cache.stats.spill_reads == 1

    def test_spill_counts_as_hit(self, tmp_path):
        cache = ArtifactCache(max_bytes=2100, spill_dir=tmp_path)
        cache.put("a", np.arange(128, dtype=np.float64))
        cache.put("b", np.zeros(128))
        cache.put("c", np.zeros(128))
        before = cache.stats.hits
        cache.get("a")
        assert cache.stats.hits == before + 1

    def test_no_spill_dir_means_recompute(self):
        cache = ArtifactCache(max_bytes=2100)
        cache.put("a", np.zeros(128))
        cache.put("b", np.zeros(128))
        cache.put("c", np.zeros(128))
        assert cache.get("a") is None

    def test_tuple_payload_round_trips(self, tmp_path):
        cache = ArtifactCache(max_bytes=2100, spill_dir=tmp_path)
        payload = (np.arange(64, dtype=np.int64), None)
        cache.put("pair", payload)
        cache.put("x", np.zeros(200))
        cache.put("y", np.zeros(200))
        matrix, codes = cache.get("pair")
        assert (matrix == np.arange(64)).all()
        assert codes is None


class TestSpillCrashWindow:
    """Spill writes are atomic: killing a spilling process mid-write must
    leave a store where every visible ``.pkl`` unpickles cleanly."""

    def test_sigkill_mid_spill_leaves_loadable_store(self, tmp_path):
        spill_dir = tmp_path / "spill"
        script = f"""
import numpy as np, itertools
from repro.service.cache import ArtifactCache
# Budget of ~1 entry: every second put evicts + spills the previous one.
cache = ArtifactCache(max_bytes=3 << 20, spill_dir={os.fspath(spill_dir)!r})
payload = np.arange(262144, dtype=np.float64)  # ~2 MiB
for i in itertools.count():
    cache.put(f"k{{i % 8}}", payload + (i % 8))
"""
        env = dict(os.environ)
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen([sys.executable, "-c", script], env=env)
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if spill_dir.exists() and any(spill_dir.glob("*.pkl")):
                    break
                time.sleep(0.02)
            time.sleep(0.15)  # let a spill be in flight
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        visible = sorted(spill_dir.glob("*.pkl"))
        assert visible  # the child did spill before dying
        for path in visible:  # atomicity: no torn pickle is ever visible
            with open(path, "rb") as fh:
                value = pickle.load(fh)
            assert value.shape == (262144,)
        # And a fresh cache over the same spill dir serves them as hits.
        survivor = ArtifactCache(max_bytes=64 << 20, spill_dir=spill_dir)
        reloaded = [survivor.get(f"k{i}") for i in range(8)]
        assert any(value is not None for value in reloaded)
        assert survivor.stats.spill_reads >= 1


class TestConcurrency:
    def test_hammering_from_threads_is_consistent(self):
        cache = ArtifactCache(max_bytes=64 << 10)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(200):
                    key = f"k{(seed * 7 + i) % 23}"
                    value = cache.get_or_compute(
                        key, lambda k=key: np.full(16, hash(k) % 251)
                    )
                    expected = np.full(16, hash(key) % 251)
                    assert (value == expected).all()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats
        assert stats.hits + stats.misses == 8 * 200
