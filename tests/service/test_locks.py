"""Tests for the cross-process file lock."""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.service.locks import FileLock, LockTimeout

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestBasics:
    def test_context_manager_acquires_and_releases(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        with lock:
            assert lock.held
        assert not lock.held

    def test_creates_parent_directory(self, tmp_path):
        with FileLock(tmp_path / "deep" / "dir" / "a.lock"):
            assert (tmp_path / "deep" / "dir" / "a.lock").exists()

    def test_not_reentrant(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        with lock:
            with pytest.raises(RuntimeError, match="not reentrant"):
                lock.acquire()

    def test_release_without_acquire_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="not held"):
            FileLock(tmp_path / "a.lock").release()

    def test_negative_timeout_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="timeout"):
            FileLock(tmp_path / "a.lock", timeout=-1)


class TestExclusion:
    def test_second_instance_times_out_while_held(self, tmp_path):
        path = tmp_path / "a.lock"
        with FileLock(path):
            contender = FileLock(path, timeout=0.1, poll_interval=0.01)
            with pytest.raises(LockTimeout):
                contender.acquire()

    def test_acquire_succeeds_after_release(self, tmp_path):
        path = tmp_path / "a.lock"
        first = FileLock(path)
        first.acquire()
        first.release()
        with FileLock(path, timeout=0.5):
            pass

    def test_excludes_across_threads(self, tmp_path):
        """Two FileLock instances on one path exclude across threads."""
        path = tmp_path / "a.lock"
        active = []
        overlaps = []

        def worker() -> None:
            with FileLock(path, timeout=10.0):
                active.append(1)
                if len(active) > 1:
                    overlaps.append(1)
                time.sleep(0.02)
                active.pop()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not overlaps

    def test_excludes_across_processes(self, tmp_path):
        """A child process cannot acquire a lock the parent holds."""
        path = tmp_path / "a.lock"
        script = (
            "import sys\n"
            "from repro.service.locks import FileLock, LockTimeout\n"
            "try:\n"
            f"    FileLock({os.fspath(path)!r}, timeout=0.3).acquire()\n"
            "except LockTimeout:\n"
            "    sys.exit(42)\n"
            "sys.exit(0)\n"
        )
        with FileLock(path):
            proc = subprocess.run(
                [sys.executable, "-c", script], env=_child_env(), timeout=30
            )
        assert proc.returncode == 42  # blocked while the parent held it
        proc = subprocess.run(
            [sys.executable, "-c", script], env=_child_env(), timeout=30
        )
        assert proc.returncode == 0  # free after release
