"""Tests for the two-tier CacheStack (memory front, disk store behind)."""

from __future__ import annotations

import pickle

import numpy as np

from repro.service import MetricsRegistry
from repro.service.cache import ArtifactCache, CacheBackend, CacheStack
from repro.service.diskcache import DiskCacheStore


def _stack(tmp_path, mem_bytes=1 << 20, disk_bytes=1 << 30, metrics=None):
    return CacheStack(
        memory=ArtifactCache(max_bytes=mem_bytes),
        disk=DiskCacheStore(tmp_path / "cache", max_bytes=disk_bytes, metrics=metrics),
    )


class TestProtocol:
    def test_backends_satisfy_cache_backend(self, tmp_path):
        assert isinstance(ArtifactCache(), CacheBackend)
        assert isinstance(DiskCacheStore(tmp_path), CacheBackend)
        assert isinstance(CacheStack(), CacheBackend)

    def test_memory_only_stack_not_process_safe(self):
        stack = CacheStack()
        assert not stack.process_safe

    def test_disk_backed_stack_is_process_safe(self, tmp_path):
        assert _stack(tmp_path).process_safe


class TestTwoTierFlow:
    def test_write_through_lands_in_both_tiers(self, tmp_path):
        stack = _stack(tmp_path)
        stack.put("tiles/a/t8", np.arange(8))
        assert stack.memory.contains("tiles/a/t8")
        assert stack.disk.contains("tiles/a/t8")

    def test_disk_hit_promotes_into_memory(self, tmp_path):
        stack = _stack(tmp_path)
        stack.disk.put("tiles/a/t8", np.arange(8))
        assert np.array_equal(stack.get("tiles/a/t8"), np.arange(8))
        assert stack.memory.contains("tiles/a/t8")
        # Second lookup is served by memory: disk hit count stays at 1.
        stack.get("tiles/a/t8")
        assert stack.stats.disk.hits == 1
        assert stack.stats.memory.hits == 1

    def test_get_or_compute_computes_once_across_tiers(self, tmp_path):
        stack = _stack(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return np.ones(4)

        stack.get_or_compute("k", compute)
        stack.get_or_compute("k", compute)  # memory hit
        stack.memory.clear()
        stack.get_or_compute("k", compute)  # disk hit, promoted back
        assert len(calls) == 1

    def test_memory_only_get_or_compute(self):
        stack = CacheStack()
        value = stack.get_or_compute("k", lambda: np.full(3, 9))
        assert np.array_equal(value, np.full(3, 9))
        stats = stack.stats
        assert stats.disk is None
        assert stats.memory.misses == 1

    def test_miss_returns_default(self, tmp_path):
        stack = _stack(tmp_path)
        assert stack.get("nope", default="sentinel") == "sentinel"

    def test_contains_checks_both_tiers(self, tmp_path):
        stack = _stack(tmp_path)
        stack.disk.put("only/disk", np.zeros(2))
        stack.memory.put("only/mem", np.zeros(2))
        assert stack.contains("only/disk")
        assert stack.contains("only/mem")
        assert not stack.contains("neither")

    def test_clear_empties_both_tiers(self, tmp_path):
        stack = _stack(tmp_path)
        stack.put("k", np.zeros(2))
        stack.clear()
        assert len(stack) == 0
        assert stack.get("k") is None


class TestStats:
    def test_combined_hit_rate_counts_disk_serves(self, tmp_path):
        stack = _stack(tmp_path)
        stack.disk.put("k", np.zeros(2))
        stack.get("k")  # memory miss, disk hit -> still a served lookup
        assert stack.stats.hit_rate == 1.0

    def test_hit_rate_zero_without_lookups(self, tmp_path):
        assert _stack(tmp_path).stats.hit_rate == 0.0

    def test_as_dict_shape(self, tmp_path):
        body = _stack(tmp_path).stats.as_dict()
        assert set(body) == {"hit_rate", "memory", "disk"}
        assert "corruptions" in body["disk"]

    def test_disk_tier_ticks_metrics_registry(self, tmp_path):
        metrics = MetricsRegistry()
        stack = _stack(tmp_path, metrics=metrics)
        stack.put("k", np.zeros(2))
        stack.memory.clear()
        stack.get("k")
        stack.get("missing")
        counters = metrics.as_dict()["counters"]
        assert counters["cache_disk_writes_total"] == 1
        assert counters["cache_disk_hits_total"] == 1
        assert counters["cache_disk_misses_total"] == 1


class TestPickling:
    def test_pickled_stack_shares_disk_not_memory(self, tmp_path):
        stack = _stack(tmp_path, mem_bytes=4 << 20)
        stack.put("tiles/a/t8", np.arange(16))
        clone = pickle.loads(pickle.dumps(stack))
        assert clone.memory.max_bytes == 4 << 20
        assert len(clone.memory) == 0  # fresh memory tier
        assert np.array_equal(clone.get("tiles/a/t8"), np.arange(16))  # via disk
        assert clone.process_safe

    def test_runner_keeps_process_safe_cache(self, tmp_path):
        from repro.service import MosaicJobRunner

        stack = _stack(tmp_path)
        runner = pickle.loads(pickle.dumps(MosaicJobRunner(cache=stack)))
        assert runner.cache is not None
        assert runner.cache.process_safe

    def test_runner_drops_memory_only_cache(self):
        from repro.service import MosaicJobRunner

        runner = pickle.loads(
            pickle.dumps(MosaicJobRunner(cache=ArtifactCache()))
        )
        assert runner.cache is None
