"""Tests for the async streaming job gateway.

Written against plain ``asyncio.run`` so the suite does not depend on an
asyncio pytest plugin: each test body is an async function executed
synchronously.  Timing-sensitive coordination goes through events and
scripted runners, never wall-clock sleeps with asserted durations.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.exceptions import AdmissionRejected, JobError
from repro.service import (
    JobSpec,
    JobState,
    MetricsRegistry,
    MosaicGateway,
    MosaicJobRunner,
    WorkerPool,
)


def spec(name: str = "j", **overrides) -> JobSpec:
    base = dict(input="portrait", target="sailboat", size=64, tile_size=8, name=name)
    base.update(overrides)
    return JobSpec(**base)


def _echo(job_spec: JobSpec) -> str:
    return job_spec.name


class GatedRunner:
    """Runner that blocks on a gate so tests control job lifetimes."""

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.started = threading.Event()

    def __call__(self, job_spec: JobSpec) -> str:
        self.started.set()
        assert self.gate.wait(timeout=10.0), "test forgot to open the gate"
        return job_spec.name


class SweepRunner:
    """Context-aware runner emitting sweep events until done or cancelled."""

    accepts_context = True

    def __init__(self, sweeps: int = 200) -> None:
        self.sweeps = sweeps
        self.first_sweep = threading.Event()

    def __call__(self, job_spec: JobSpec, ctx=None) -> str:
        for index in range(self.sweeps):
            if ctx is not None:
                ctx.check_cancelled()
                ctx.emit("sweep", {"sweep": index, "swaps": 0, "total": 0})
            self.first_sweep.set()
            time.sleep(0.001)  # give a cancel request a window to land
        return job_spec.name


def run_async(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_backpressure_rejects_beyond_bound(self):
        async def main():
            runner = GatedRunner()
            pool = WorkerPool(workers=1, runner=runner, seed=0)
            gateway = MosaicGateway(pool, max_pending=2)
            one = await gateway.submit(spec("a"))
            two = await gateway.submit(spec("b"))
            with pytest.raises(AdmissionRejected, match="admission queue full"):
                await gateway.submit(spec("c"))
            assert gateway.pending == 2
            runner.gate.set()
            await gateway.drain()
            # Slots freed: submission is accepted again.
            three = await gateway.submit(spec("c"))
            runner.gate.set()
            await gateway.aclose()
            pool.shutdown()
            for stream in (one, two, three):
                assert stream.record.state is JobState.DONE
            counters = pool.metrics.as_dict()["counters"]
            assert counters["gateway_admitted"] == 3
            assert counters["gateway_rejected"] == 1

        run_async(main())

    def test_submit_when_admitted_waits_for_slot(self):
        async def main():
            pool = WorkerPool(workers=2, runner=_echo, seed=0)
            async with MosaicGateway(pool, max_pending=2) as gateway:
                streams = [
                    await gateway.submit_when_admitted(spec(f"j{i}"))
                    for i in range(6)
                ]
                for stream in streams:
                    await stream.collect()
            pool.shutdown()
            assert all(s.record.state is JobState.DONE for s in streams)
            assert pool.metrics.counter("gateway_admitted").value == 6

        run_async(main())

    def test_submit_after_close_rejected(self):
        async def main():
            pool = WorkerPool(workers=1, runner=_echo, seed=0)
            gateway = MosaicGateway(pool)
            await gateway.aclose()
            with pytest.raises(JobError, match="closed"):
                await gateway.submit(spec())
            pool.shutdown()

        run_async(main())

    def test_invalid_bound_rejected(self):
        pool = WorkerPool(workers=1, runner=_echo, seed=0)
        with pytest.raises(JobError, match="max_pending"):
            MosaicGateway(pool, max_pending=0)
        pool.shutdown()


class TestEventStreams:
    def test_events_are_ordered_with_single_terminal(self):
        async def main():
            pool = WorkerPool(workers=2, runner=_echo, seed=0)
            async with MosaicGateway(pool, max_pending=8) as gateway:
                streams = [await gateway.submit(spec(f"j{i}")) for i in range(5)]
                per_job = [await stream.collect() for stream in streams]
            pool.shutdown()
            for stream, events in zip(streams, per_job):
                assert [e.seq for e in events] == list(range(len(events)))
                assert events[0].kind == "admitted"
                assert [e.terminal for e in events].count(True) == 1
                assert events[-1].terminal
                assert events[-1].state == "DONE"
                states = [e.state for e in events if e.kind == "state"]
                assert states == ["RUNNING", "DONE"]
                assert all(e.job_id == stream.job_id for e in events)

        run_async(main())

    def test_mosaic_job_streams_phase_and_sweep_events(self):
        async def main():
            pool = WorkerPool(
                workers=1, runner=MosaicJobRunner(), seed=0
            )
            async with MosaicGateway(pool, max_pending=2) as gateway:
                stream = await gateway.submit(spec())
                events = await stream.collect()
            pool.shutdown()
            kinds = [e.kind for e in events]
            phases = [e.payload["phase"] for e in events if e.kind == "phase"]
            assert "step2_error_matrix" in phases
            assert "step3_rearrangement" in phases
            assert kinds.count("sweep") >= 1
            # Sweep totals are monotone non-increasing (2-opt invariant,
            # observed live through the stream).
            totals = [e.payload["total"] for e in events if e.kind == "sweep"]
            assert totals == sorted(totals, reverse=True)
            assert stream.record.result.total_error == totals[-1]

        run_async(main())

    def test_retry_events_carry_attempt_and_delay(self):
        attempts = {"n": 0}

        def flaky(job_spec: JobSpec) -> str:
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        async def main():
            pool = WorkerPool(
                workers=1, runner=flaky, max_retries=3, backoff=0.001, seed=0
            )
            async with MosaicGateway(pool, max_pending=2) as gateway:
                stream = await gateway.submit(spec())
                events = await stream.collect()
            pool.shutdown()
            retries = [e for e in events if e.kind == "retry"]
            assert [e.payload["attempt"] for e in retries] == [1, 2]
            assert all(e.payload["delay"] > 0 for e in retries)
            assert all("transient" in e.payload["error"] for e in retries)
            states = [e.state for e in events if e.kind == "state"]
            assert states == [
                "RUNNING", "PENDING", "RUNNING", "PENDING", "RUNNING", "DONE",
            ]

        run_async(main())

    def test_event_log_is_valid_ndjson(self, tmp_path):
        log_path = tmp_path / "events.ndjson"

        async def main():
            pool = WorkerPool(workers=1, runner=_echo, seed=0)
            async with MosaicGateway(
                pool, max_pending=4, event_log=log_path
            ) as gateway:
                streams = [await gateway.submit(spec(f"j{i}")) for i in range(2)]
                collected = [await s.collect() for s in streams]
            pool.shutdown()
            return collected

        collected = run_async(main())
        lines = [json.loads(line) for line in log_path.read_text().splitlines()]
        assert len(lines) == sum(len(events) for events in collected)
        for line in lines:
            assert set(line) == {"job_id", "seq", "kind", "terminal", "payload"}

    def test_stream_lag_metric_recorded(self):
        async def main():
            metrics = MetricsRegistry()
            pool = WorkerPool(workers=1, runner=_echo, metrics=metrics, seed=0)
            async with MosaicGateway(pool, max_pending=2) as gateway:
                await (await gateway.submit(spec())).collect()
            pool.shutdown()
            data = metrics.as_dict()
            assert data["histograms"]["gateway_stream_lag_seconds"]["count"] >= 2
            assert data["counters"]["gateway_events_streamed"] >= 3

        run_async(main())


class TestCancellation:
    def test_cancel_queued_job_emits_terminal_cancelled(self):
        async def main():
            runner = GatedRunner()
            pool = WorkerPool(workers=1, runner=runner, seed=0)
            async with MosaicGateway(pool, max_pending=4) as gateway:
                blocker = await gateway.submit(spec("blocker"))
                await asyncio.get_running_loop().run_in_executor(
                    None, runner.started.wait, 5.0
                )
                victim = await gateway.submit(spec("victim"))
                assert await gateway.cancel(victim.job_id) is True
                events = await victim.collect()
                runner.gate.set()
                await blocker.collect()
            pool.shutdown()
            assert events[-1].terminal
            assert events[-1].state == "CANCELLED"
            assert victim.record.state is JobState.CANCELLED
            # Never ran: no RUNNING event on the victim's stream.
            assert "RUNNING" not in [e.state for e in events]

        run_async(main())

    def test_cancel_in_flight_job_stops_mid_sweep(self):
        """The acceptance scenario: cancelling a RUNNING job interrupts
        the sweep loop and the stream ends with CANCELLED."""

        async def main():
            runner = SweepRunner(sweeps=10_000)
            pool = WorkerPool(workers=1, runner=runner, seed=0)
            async with MosaicGateway(pool, max_pending=2) as gateway:
                stream = await gateway.submit(spec("big"))
                events = []
                cancelled = False
                async for event in stream:
                    events.append(event)
                    if event.kind == "sweep" and not cancelled:
                        cancelled = True
                        assert await gateway.cancel(stream.job_id) is True
            pool.shutdown()
            assert events[-1].state == "CANCELLED"
            assert stream.record.state is JobState.CANCELLED
            sweeps = [e for e in events if e.kind == "sweep"]
            # Stopped early: nowhere near the 10k scripted sweeps.
            assert 1 <= len(sweeps) < 10_000
            assert pool.metrics.counter("jobs_cancelled").value == 1

        run_async(main())

    def test_cancel_in_flight_mosaic_job(self):
        """Same scenario through the real pipeline: a large mosaic job is
        cancelled from its first progress event and stops early."""

        async def main():
            pool = WorkerPool(workers=1, runner=MosaicJobRunner(), seed=0)
            async with MosaicGateway(pool, max_pending=2) as gateway:
                stream = await gateway.submit(
                    spec("big", size=256, tile_size=8)
                )
                events = []
                async for event in stream:
                    events.append(event)
                    if event.kind == "phase" and len(events) <= 4:
                        await gateway.cancel(stream.job_id)
                return events, stream

        events, stream = run_async(main())
        assert stream.record.state is JobState.CANCELLED
        assert events[-1].state == "CANCELLED"
        # The pipeline aborted before Step 3 could finish.
        assert "step3_rearrangement" not in [
            e.payload.get("phase") for e in events if e.kind == "phase"
        ]

    def test_cancel_unknown_job_returns_false(self):
        async def main():
            pool = WorkerPool(workers=1, runner=_echo, seed=0)
            async with MosaicGateway(pool) as gateway:
                assert await gateway.cancel("job-nope") is False
            pool.shutdown()

        run_async(main())


class TestDispatchInvariants:
    def test_no_events_after_terminal(self):
        """Late emissions (e.g. from a timed-out, abandoned attempt) are
        dropped, never appended to a finished stream."""

        async def main():
            pool = WorkerPool(workers=1, runner=_echo, seed=0)
            async with MosaicGateway(pool, max_pending=2) as gateway:
                stream = await gateway.submit(spec())
                events = await stream.collect()
                # Simulate a straggler emission arriving after DONE.
                gateway._dispatch(
                    stream.job_id, "sweep", {"sweep": 99}, time.perf_counter()
                )
                assert stream._queue.empty()
            pool.shutdown()
            assert events[-1].terminal
            assert pool.metrics.counter("gateway_events_dropped").value == 1

        run_async(main())

    def test_unadmitted_job_events_dropped(self):
        """Events for jobs submitted around the gateway don't leak in."""

        async def main():
            pool = WorkerPool(workers=1, runner=_echo, seed=0)
            async with MosaicGateway(pool, max_pending=2) as gateway:
                direct = pool.submit(spec("direct"))
                pool.join()
                gateway._dispatch(
                    direct.job_id, "state", {"state": "DONE"}, time.perf_counter()
                )
                assert gateway.pending == 0
            pool.shutdown()
            assert pool.metrics.counter("gateway_events_dropped").value == 1

        run_async(main())

    def test_drain_with_nothing_pending_returns(self):
        async def main():
            pool = WorkerPool(workers=1, runner=_echo, seed=0)
            gateway = MosaicGateway(pool)
            await asyncio.wait_for(gateway.drain(), timeout=1.0)
            pool.shutdown()

        run_async(main())

    def test_gateway_is_bound_to_one_event_loop(self):
        pool = WorkerPool(workers=1, runner=_echo, seed=0)
        gateway = MosaicGateway(pool, max_pending=2)

        async def first():
            await (await gateway.submit(spec())).collect()

        async def second():
            with pytest.raises(JobError, match="different event loop"):
                await gateway.submit(spec())

        asyncio.run(first())
        asyncio.run(second())  # a fresh loop must be rejected, not corrupt state
        pool.shutdown()

    def test_event_serialization_roundtrip(self):
        async def main():
            pool = WorkerPool(workers=1, runner=_echo, seed=0)
            async with MosaicGateway(pool, max_pending=2) as gateway:
                events = await (await gateway.submit(spec())).collect()
            pool.shutdown()
            for event in events:
                assert json.loads(event.to_json()) == json.loads(
                    json.dumps(event.to_dict(), default=str)
                )
            assert events[1].state == "RUNNING"
            assert events[0].state is None  # admitted events carry no state

        run_async(main())
