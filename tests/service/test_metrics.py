"""Tests for the metrics layer (counters, gauges, histograms, registry)."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.utils.timing import TimingBreakdown


class TestCounter:
    def test_increments(self):
        c = Counter("jobs")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_rejects_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("jobs").inc(-1)

    def test_thread_safety(self):
        c = Counter("jobs")
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6


class TestHistogram:
    def test_basic_stats(self):
        h = Histogram("latency")
        for v in (0.001, 0.003, 0.01, 0.1):
            h.observe(v)
        body = h.as_dict()
        assert body["count"] == 4
        assert body["sum"] == pytest.approx(0.114)
        assert body["min"] == pytest.approx(0.001)
        assert body["max"] == pytest.approx(0.1)

    def test_quantiles_exact_under_cap(self):
        h = Histogram("latency")
        for v in range(100):
            h.observe(v / 1000.0)
        assert h.quantile(0.5) == pytest.approx(0.050)
        assert h.quantile(0.99) == pytest.approx(0.099)

    def test_empty_histogram(self):
        # Every quantile of an empty histogram is NaN — never 0.0, which
        # would be indistinguishable from a genuine zero-latency sample.
        h = Histogram("latency")
        for q in (0.0, 0.5, 0.99, 1.0):
            assert math.isnan(h.quantile(q))
        assert h.as_dict() == {"count": 0, "sum": 0.0}

    def test_cumulative_buckets(self):
        h = Histogram("latency", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        buckets = h.as_dict()["buckets"]
        assert [b["count"] for b in buckets] == [1, 2, 3, 4]
        assert buckets[-1]["le"] == "+Inf"

    def test_invalid_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("latency").quantile(1.5)


class TestRegistry:
    def test_instruments_are_memoized(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_as_dict_schema(self):
        registry = MetricsRegistry()
        registry.counter("jobs_done").inc(2)
        registry.gauge("queue_depth").set(1)
        registry.histogram("latency").observe(0.01)
        data = registry.as_dict(extra={"cache": {"hit_rate": 0.5}})
        assert data["counters"]["jobs_done"] == 2
        assert data["gauges"]["queue_depth"] == 1
        assert data["histograms"]["latency"]["count"] == 1
        assert data["cache"]["hit_rate"] == 0.5

    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("jobs_done").inc()
        registry.histogram("latency").observe(0.2)
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["jobs_done"] == 1
        assert parsed["histograms"]["latency"]["p50"] == pytest.approx(0.2)

    def test_record_timings(self):
        registry = MetricsRegistry()
        timings = TimingBreakdown({"step2_error_matrix": 0.4, "step3_rearrangement": 0.1})
        registry.record_timings(timings, prefix="phase")
        data = registry.as_dict()
        assert data["histograms"]["phase_step2_error_matrix_seconds"]["count"] == 1
        assert data["histograms"]["phase_step3_rearrangement_seconds"]["sum"] == pytest.approx(0.1)

    def test_summary_table_mentions_instruments(self):
        registry = MetricsRegistry()
        registry.counter("jobs_done").inc(3)
        registry.histogram("latency").observe(0.05)
        registry.histogram("empty_one")
        table = registry.summary_table()
        assert "jobs_done" in table
        assert "latency" in table
        assert "p99" in table
        assert "(empty)" in table

    def test_concurrent_observation(self):
        registry = MetricsRegistry()

        def work() -> None:
            for i in range(500):
                registry.counter("n").inc()
                registry.histogram("lat").observe(i / 1000.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("n").value == 2000
        assert registry.histogram("lat").count == 2000


class TestRenderPrometheus:
    def test_empty_registry_renders_nothing(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_counter_and_gauge_samples(self):
        registry = MetricsRegistry()
        registry.counter("jobs_done", help="Completed jobs").inc(3)
        registry.gauge("queue_depth").set(2.5)
        text = registry.render_prometheus()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# HELP jobs_done Completed jobs" in lines
        assert "# TYPE jobs_done counter" in lines
        assert "jobs_done 3" in lines  # integral floats render bare
        assert "# TYPE queue_depth gauge" in lines
        assert "queue_depth 2.5" in lines
        # Un-helped instruments still get their TYPE line, no HELP line.
        assert not any(l.startswith("# HELP queue_depth") for l in lines)

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            h.observe(value)
        lines = registry.render_prometheus().splitlines()
        assert "# TYPE latency_seconds histogram" in lines
        assert 'latency_seconds_bucket{le="0.01"} 1' in lines
        assert 'latency_seconds_bucket{le="0.1"} 3' in lines
        assert 'latency_seconds_bucket{le="1"} 4' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 5' in lines
        assert "latency_seconds_count 5" in lines
        sum_line = [l for l in lines if l.startswith("latency_seconds_sum ")][0]
        assert float(sum_line.split()[1]) == pytest.approx(5.605)

    def test_names_are_sanitised(self):
        registry = MetricsRegistry()
        registry.counter("step2.error-matrix ms").inc()
        registry.counter("0weird").inc()
        text = registry.render_prometheus()
        assert "step2_error_matrix_ms 1" in text
        assert "_0weird 1" in text
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split()[0].split("{")[0]
            assert not any(ch in name for ch in ".- "), name

    def test_special_float_values(self):
        registry = MetricsRegistry()
        registry.gauge("nan_gauge").set(math.nan)
        registry.gauge("inf_gauge").set(math.inf)
        registry.gauge("neg_inf_gauge").set(-math.inf)
        text = registry.render_prometheus()
        assert "nan_gauge NaN" in text
        assert "inf_gauge +Inf" in text
        assert "neg_inf_gauge -Inf" in text

    def test_empty_histogram_renders_zero_series(self):
        registry = MetricsRegistry()
        registry.histogram("quiet_seconds", buckets=(1.0,))
        lines = registry.render_prometheus().splitlines()
        assert 'quiet_seconds_bucket{le="1"} 0' in lines
        assert 'quiet_seconds_bucket{le="+Inf"} 0' in lines
        assert "quiet_seconds_sum 0" in lines
        assert "quiet_seconds_count 0" in lines
