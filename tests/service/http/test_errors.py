"""Error taxonomy of the HTTP front: typed 400s, not 500s.

Malformed bodies, unknown spec fields, unknown job kinds and invalid
spec values must each come back as a 400 with a machine-readable
``code`` tag in the JSON body — exercised over real loopback sockets
with the stdlib client, which surfaces the tag as
``ServiceClientError.code``.
"""

from __future__ import annotations

import json

import pytest

from repro.service.client import MosaicServiceClient, ServiceClientError

from .conftest import ServedFront, echo_runner, raw_request, run_async, spec_dict


def _submit_expecting_error(payload: dict) -> ServiceClientError:
    async def scenario():
        async with ServedFront(echo_runner) as served:
            client = MosaicServiceClient(served.base_url)
            with pytest.raises(ServiceClientError) as excinfo:
                await served.call(client.submit, payload)
            return excinfo.value

    return run_async(scenario())


class TestSubmitTaxonomy:
    def test_unknown_field(self):
        exc = _submit_expecting_error(spec_dict(tile_sze=8))
        assert exc.status == 400
        assert exc.code == "unknown_field"
        assert "tile_sze" in str(exc)

    def test_unknown_kind(self):
        exc = _submit_expecting_error(spec_dict(kind="collage"))
        assert exc.status == 400
        assert exc.code == "unknown_kind"
        assert "collage" in str(exc)

    def test_invalid_spec_value(self):
        exc = _submit_expecting_error(spec_dict(timeout=-1))
        assert exc.status == 400
        assert exc.code == "invalid_spec"

    def test_invalid_library_knob(self):
        exc = _submit_expecting_error(
            spec_dict(kind="library", top_k=0, thumb_size=16)
        )
        assert exc.status == 400
        assert exc.code == "invalid_spec"
        assert "top_k" in str(exc)

    def test_unknown_backend(self):
        exc = _submit_expecting_error(spec_dict(backend="tpu"))
        assert exc.status == 400
        assert exc.code == "invalid_spec"

class TestRawBodies:
    def _roundtrip(self, body: bytes) -> tuple[int, dict]:
        async def scenario():
            async with ServedFront(echo_runner) as served:
                request = (
                    b"POST /v1/jobs HTTP/1.1\r\n"
                    b"Host: test\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                    b"Connection: close\r\n\r\n" + body
                )
                return await raw_request(served.port, request)

        raw = run_async(scenario())
        head, _, payload = raw.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        return status, json.loads(payload)

    def test_invalid_json_is_typed_400(self):
        status, body = self._roundtrip(b"{not json")
        assert status == 400
        assert body["code"] == "malformed_body"
        assert "error" in body

    def test_empty_body_is_typed_400(self):
        status, body = self._roundtrip(b"")
        assert status == 400
        assert body["code"] == "malformed_body"

    def test_non_object_body_is_typed_400(self):
        status, body = self._roundtrip(b"[1, 2, 3]")
        assert status == 400
        assert body["code"] == "malformed_body"

    def test_unknown_field_body_shape(self):
        status, body = self._roundtrip(
            json.dumps(spec_dict(bogus_knob=1)).encode()
        )
        assert status == 400
        assert body == {
            "error": "unknown job spec fields: bogus_knob",
            "code": "unknown_field",
        }


class TestUntypedErrorsKeepWorking:
    def test_not_found_has_no_code(self):
        async def scenario():
            async with ServedFront(echo_runner) as served:
                client = MosaicServiceClient(served.base_url)
                with pytest.raises(ServiceClientError) as excinfo:
                    await served.call(client.job, "job-nope")
                return excinfo.value

        exc = run_async(scenario())
        assert exc.status == 404
        assert exc.code is None

    def test_valid_submit_still_accepted(self):
        async def scenario():
            async with ServedFront(echo_runner) as served:
                client = MosaicServiceClient(served.base_url)
                job = await served.call(client.submit, spec_dict(name="ok"))
                assert job["job_id"].startswith("job-")
                events = list(
                    await served.call(
                        lambda: list(client.events(job["job_id"]))
                    )
                )
                assert events[-1]["terminal"]

        run_async(scenario())
