"""Unit tests for the RFC 6455 framing subset."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.http import websocket as ws


def read(raw: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await ws.read_frame(reader, **kwargs)

    return asyncio.run(go())


class TestHandshake:
    def test_rfc_vector(self):
        # The worked example from RFC 6455 §1.3.
        assert (
            ws.accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )


class TestFrames:
    @pytest.mark.parametrize("size", [0, 1, 125, 126, 65535, 65536, 70000])
    def test_roundtrip_unmasked(self, size):
        payload = bytes(range(256)) * (size // 256 + 1)
        payload = payload[:size]
        opcode, out = read(
            ws.encode_frame(ws.OP_BINARY, payload), max_payload=1 << 20
        )
        assert opcode == ws.OP_BINARY
        assert out == payload

    @pytest.mark.parametrize("size", [0, 5, 126, 65536])
    def test_roundtrip_masked(self, size):
        payload = b"m" * size
        frame = ws.encode_frame(ws.OP_TEXT, payload, mask=True)
        # Masked frames do not carry the payload in the clear.
        if size >= 8:
            assert payload[:8] not in frame
        opcode, out = read(frame, max_payload=1 << 20)
        assert opcode == ws.OP_TEXT
        assert out == payload

    def test_close_roundtrip(self):
        frame = ws.encode_frame(ws.OP_CLOSE, ws.encode_close(1000, "done"))
        opcode, payload = read(frame)
        assert opcode == ws.OP_CLOSE
        assert ws.parse_close(payload) == (1000, "done")
        assert ws.parse_close(b"") == (1005, "")

    def test_payload_limit(self):
        frame = ws.encode_frame(ws.OP_BINARY, b"x" * 2048)
        with pytest.raises(ws.WebSocketError, match="exceeds"):
            read(frame, max_payload=1024)

    def test_fragmented_rejected(self):
        frame = bytearray(ws.encode_frame(ws.OP_TEXT, b"hi"))
        frame[0] &= 0x7F  # clear FIN
        with pytest.raises(ws.WebSocketError, match="fragmented"):
            read(bytes(frame))

    def test_reserved_bits_rejected(self):
        frame = bytearray(ws.encode_frame(ws.OP_TEXT, b"hi"))
        frame[0] |= 0x40  # RSV1 without an extension
        with pytest.raises(ws.WebSocketError, match="reserved"):
            read(bytes(frame))

    def test_oversized_control_frame_rejected(self):
        # Control frames are capped at 125 payload bytes by the RFC;
        # craft one claiming 126 via the extended length form.
        frame = bytes([0x80 | ws.OP_PING, 126, 0, 126]) + b"p" * 126
        with pytest.raises(ws.WebSocketError, match="control frame"):
            read(frame)

    def test_truncated_frame_raises_incomplete_read(self):
        frame = ws.encode_frame(ws.OP_TEXT, b"full payload")[:-3]
        with pytest.raises(asyncio.IncompleteReadError):
            read(frame)
