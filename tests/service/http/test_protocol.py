"""Unit tests for the HTTP/1.1 parser and response writers."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.http.protocol import (
    HttpError,
    end_chunks,
    read_request,
    response_head,
    send_json,
    write_chunk,
)


def parse(raw: bytes, **limits):
    """Feed ``raw`` into a fresh StreamReader and parse one request."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **limits)

    return asyncio.run(go())


class CollectingWriter:
    """Duck-typed StreamWriter capturing written bytes."""

    def __init__(self) -> None:
        self.data = bytearray()

    def write(self, data: bytes) -> None:
        self.data.extend(data)


class TestParsing:
    def test_basic_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.query == {}
        assert request.headers["host"] == "x"
        assert request.keep_alive

    def test_query_and_escapes(self):
        request = parse(
            b"GET /v1/jobs/job-1/events?from_seq=7&x=a%20b HTTP/1.1\r\n\r\n"
        )
        assert request.path == "/v1/jobs/job-1/events"
        assert request.query == {"from_seq": "7", "x": "a b"}
        assert request.int_query("from_seq", 0) == 7
        assert request.int_query("missing", 3) == 3
        with pytest.raises(HttpError) as excinfo:
            parse(
                b"GET /x?from_seq=nope HTTP/1.1\r\n\r\n"
            ).int_query("from_seq", 0)
        assert excinfo.value.status == 400

    def test_post_with_body(self):
        body = json.dumps({"input": "a", "target": "b"}).encode()
        raw = (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.json() == {"input": "a", "target": "b"}

    def test_eof_returns_none(self):
        assert parse(b"") is None

    def test_body_limit_413(self):
        raw = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse(raw, max_body_bytes=1024)
        assert excinfo.value.status == 413

    def test_post_without_length_411(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST /v1/jobs HTTP/1.1\r\n\r\n")
        assert excinfo.value.status == 411

    def test_chunked_request_body_501(self):
        raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 501

    def test_malformed_request_line_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GARBAGE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_version_501(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/2.0\r\n\r\n")
        assert excinfo.value.status == 501

    def test_header_block_limit_431(self):
        filler = b"".join(
            b"X-Pad-%d: %s\r\n" % (index, b"v" * 100) for index in range(64)
        )
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/1.1\r\n" + filler + b"\r\n", max_header_bytes=1024)
        assert excinfo.value.status == 431

    def test_malformed_header_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert excinfo.value.status == 400

    def test_negative_content_length_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert excinfo.value.status == 400

    def test_keep_alive_semantics(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive
        assert not parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive
        assert not parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive
        assert parse(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        ).keep_alive

    def test_json_body_errors(self):
        request = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot-json!"
        )
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400
        array = parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]")
        with pytest.raises(HttpError, match="JSON object"):
            array.json()


class TestResponses:
    def test_response_head(self):
        head = response_head(429, {"Retry-After": "1"})
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
        assert b"Retry-After: 1\r\n" in head
        assert head.endswith(b"\r\n\r\n")

    def test_send_json_roundtrip(self):
        writer = CollectingWriter()
        send_json(writer, 200, {"ok": True})
        raw = bytes(writer.data)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Type: application/json" in head
        assert json.loads(body) == {"ok": True}
        length = int(
            [l for l in head.split(b"\r\n") if l.lower().startswith(b"content-length")][
                0
            ].split(b":")[1]
        )
        assert length == len(body)

    def test_chunked_framing(self):
        writer = CollectingWriter()
        write_chunk(writer, b"hello")
        write_chunk(writer, b"")  # empty chunks are dropped, not stream-ending
        write_chunk(writer, b"world!")
        end_chunks(writer)
        assert bytes(writer.data) == b"5\r\nhello\r\n6\r\nworld!\r\n0\r\n\r\n"
