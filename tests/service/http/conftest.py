"""Shared helpers for the HTTP front tests.

Same philosophy as the gateway suite: plain ``asyncio.run`` (no asyncio
pytest plugin), scripted runners gated on events instead of wall-clock
sleeps, and everything over real loopback sockets — the parser, the
router and the streams are exercised exactly as a remote client would.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.service import JobSpec, MosaicGateway, WorkerPool
from repro.service.http import HttpFront, HttpFrontConfig


def spec(name: str = "j", **overrides) -> JobSpec:
    base = dict(input="portrait", target="sailboat", size=64, tile_size=8, name=name)
    base.update(overrides)
    return JobSpec(**base)


def spec_dict(name: str = "j", **overrides) -> dict:
    base = dict(input="portrait", target="sailboat", size=64, tile_size=8, name=name)
    base.update(overrides)
    return base


def echo_runner(job_spec: JobSpec) -> str:
    return job_spec.name


class SweepRunner:
    """Context-aware runner emitting ``sweeps`` sweep events per job."""

    accepts_context = True

    def __init__(self, sweeps: int = 5) -> None:
        self.sweeps = sweeps
        self.first_sweep = threading.Event()

    def __call__(self, job_spec: JobSpec, ctx=None) -> str:
        for index in range(self.sweeps):
            if ctx is not None:
                ctx.check_cancelled()
                ctx.emit("sweep", {"sweep": index, "swaps": 0, "total": 0})
            self.first_sweep.set()
            time.sleep(0.001)
        return job_spec.name


class GatedRunner:
    """Runner that spins on a gate, checking for cancellation."""

    accepts_context = True

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.started = threading.Event()

    def __call__(self, job_spec: JobSpec, ctx=None) -> str:
        self.started.set()
        while not self.gate.wait(timeout=0.01):
            if ctx is not None:
                ctx.check_cancelled()
        return job_spec.name


class ServedFront:
    """One pool + gateway + HTTP front bound to an ephemeral port."""

    def __init__(self, runner, *, workers=2, max_pending=8, **config_overrides):
        self.runner = runner
        self.workers = workers
        self.max_pending = max_pending
        self.config_overrides = config_overrides
        self.pool = None
        self.gateway = None
        self.front = None

    async def __aenter__(self) -> "ServedFront":
        self.pool = WorkerPool(workers=self.workers, runner=self.runner, seed=0)
        self.gateway = MosaicGateway(self.pool, max_pending=self.max_pending)
        self.front = HttpFront(
            self.gateway,
            config=HttpFrontConfig(port=0, **self.config_overrides),
        )
        await self.front.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.gateway.aclose(drain=True)
        await self.front.broker.drain()
        await self.front.aclose()
        self.pool.shutdown()

    @property
    def port(self) -> int:
        return self.front.port

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.front.port}"

    async def call(self, fn, *args):
        """Run a blocking client call off-loop (the loop serves the HTTP
        front, so blocking on it would deadlock the test)."""
        return await asyncio.get_running_loop().run_in_executor(
            None, fn, *args
        )


async def raw_request(port: int, payload: bytes) -> bytes:
    """Send raw bytes, return everything until the server closes."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    writer.write_eof()
    data = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    return data


def run_async(coro):
    return asyncio.run(coro)
