"""Tests for the replayable event logs behind the HTTP front.

The Hypothesis case pins the resume contract the network API depends
on: wherever a client's first subscription is cut and whenever the
``from_seq`` reconnect happens relative to ongoing appends, the union of
both reads is exactly the event sequence — no duplicates, no gaps, one
terminal.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import MosaicGateway, WorkerPool
from repro.service.gateway import GatewayEvent
from repro.service.http.broker import EventLog, JobEventBroker

from tests.service.http.conftest import GatedRunner, echo_runner, run_async, spec


def make_event(seq: int, total: int) -> GatewayEvent:
    terminal = seq == total - 1
    kind = "state" if terminal else "sweep"
    payload = {"state": "DONE"} if terminal else {"sweep": seq}
    return GatewayEvent(
        job_id="job-x", seq=seq, kind=kind, payload=payload, terminal=terminal
    )


class TestEventLog:
    def test_replay_then_live(self):
        async def main():
            log = EventLog("job-x")
            for seq in range(3):
                log.append(make_event(seq, total=10))

            collected = []

            async def subscriber():
                async for event in log.subscribe(0):
                    collected.append(event.seq)

            task = asyncio.create_task(subscriber())
            await asyncio.sleep(0)  # let the replay part run
            for seq in range(3, 10):
                log.append(make_event(seq, total=10))
            await asyncio.wait_for(task, timeout=5)
            assert collected == list(range(10))

        run_async(main())

    def test_multiple_subscribers_see_identical_order(self):
        async def main():
            log = EventLog("job-x")

            async def collect(from_seq):
                return [e.seq async for e in log.subscribe(from_seq)]

            tasks = [
                asyncio.create_task(collect(0)),
                asyncio.create_task(collect(4)),
                asyncio.create_task(collect(9)),
            ]
            await asyncio.sleep(0)
            for seq in range(10):
                log.append(make_event(seq, total=10))
                if seq % 3 == 0:
                    await asyncio.sleep(0)  # interleave appends with reads
            full, mid, tail = await asyncio.wait_for(
                asyncio.gather(*tasks), timeout=5
            )
            assert full == list(range(10))
            assert mid == list(range(4, 10))
            assert tail == [9]

        run_async(main())

    def test_subscribe_after_close_replays_everything(self):
        async def main():
            log = EventLog("job-x")
            for seq in range(5):
                log.append(make_event(seq, total=5))
            assert log.closed
            seqs = [e.seq async for e in log.subscribe(2)]
            assert seqs == [2, 3, 4]

        run_async(main())

    @settings(max_examples=50, deadline=None)
    @given(
        total=st.integers(min_value=1, max_value=20),
        cut=st.integers(min_value=0, max_value=20),
        prefill=st.integers(min_value=0, max_value=20),
    )
    def test_resume_interleaving_property(self, total, cut, prefill):
        """First reader consumes [0, cut); a resumed reader starting at
        ``cut`` joins while appends are still happening (``prefill``
        events land before it subscribes).  Union must be exact."""
        cut = min(cut, total)
        prefill = min(prefill, total)

        async def main():
            log = EventLog("job-x")
            first: list[int] = []

            async def first_reader():
                if cut == 0:
                    return  # disconnected before reading anything
                async for event in log.subscribe(0):
                    first.append(event.seq)
                    if len(first) >= cut:
                        return  # simulated disconnect

            first_task = asyncio.create_task(first_reader())
            for seq in range(prefill):
                log.append(make_event(seq, total))
                await asyncio.sleep(0)
            resumed_task = asyncio.create_task(
                asyncio.wait_for(
                    _collect(log.subscribe(cut)), timeout=5
                )
            )
            await asyncio.sleep(0)
            for seq in range(prefill, total):
                log.append(make_event(seq, total))
                if seq % 2:
                    await asyncio.sleep(0)
            resumed = await resumed_task
            await asyncio.wait_for(first_task, timeout=5)
            assert first == list(range(cut))
            assert [e.seq for e in resumed] == list(range(cut, total))
            union = first + [e.seq for e in resumed]
            assert union == list(range(total))  # no duplicates, no gaps
            assert sum(e.terminal for e in resumed) == (1 if cut < total else 0)

        run_async(main())


async def _collect(subscription):
    return [event async for event in subscription]


class TestJobEventBroker:
    def test_submit_pump_and_listing(self):
        async def main():
            pool = WorkerPool(workers=2, runner=echo_runner, seed=0)
            gateway = MosaicGateway(pool, max_pending=8)
            broker = JobEventBroker(gateway)
            job_ids = [await broker.submit(spec(f"job{i}")) for i in range(3)]
            await broker.drain()
            for job_id in job_ids:
                log = broker.log(job_id)
                assert log is not None and log.closed
                events = [e async for e in log.subscribe(0)]
                assert [e.seq for e in events] == list(range(len(events)))
                assert sum(e.terminal for e in events) == 1
            summaries = broker.jobs()
            assert [s["state"] for s in summaries] == ["DONE"] * 3
            await gateway.aclose()
            pool.shutdown()

        run_async(main())

    def test_terminal_log_eviction(self):
        async def main():
            pool = WorkerPool(workers=2, runner=echo_runner, seed=0)
            gateway = MosaicGateway(pool, max_pending=8)
            broker = JobEventBroker(gateway, retain_terminal=2)
            job_ids = [await broker.submit(spec(f"job{i}")) for i in range(5)]
            await broker.drain()
            retained = [jid for jid in job_ids if broker.log(jid) is not None]
            assert len(retained) == 2
            assert retained == job_ids[-2:]  # oldest finished evicted first
            assert len(broker.jobs()) == 2
            await gateway.aclose()
            pool.shutdown()

        run_async(main())

    def test_cancel_routes_to_gateway(self):
        async def main():
            runner = GatedRunner()
            pool = WorkerPool(workers=1, runner=runner, seed=0)
            gateway = MosaicGateway(pool, max_pending=8)
            broker = JobEventBroker(gateway)
            job_id = await broker.submit(spec("victim"))
            assert await broker.cancel(job_id)
            await broker.drain()
            events = [e async for e in broker.log(job_id).subscribe(0)]
            assert events[-1].payload["state"] == "CANCELLED"
            assert await broker.cancel(job_id) is False  # already terminal
            assert await broker.cancel("job-unknown") is False
            await gateway.aclose()
            pool.shutdown()

        run_async(main())

    def test_rejects_bad_retention(self):
        async def main():
            pool = WorkerPool(workers=1, runner=echo_runner, seed=0)
            gateway = MosaicGateway(pool, max_pending=2)
            with pytest.raises(ValueError, match="retain_terminal"):
                JobEventBroker(gateway, retain_terminal=0)
            pool.shutdown()

        run_async(main())
