"""Client library tests, focused on the reconnect-resume loop.

A scripted fake server — a raw ``asyncio.start_server`` speaking just
enough HTTP — drops the NDJSON stream mid-flight at chosen points so the
tests can pin the client-side contract: ``events()`` reconnects with
``from_seq`` set past what it already yielded, never re-yields a seq,
and stops after exactly one terminal event.
"""

from __future__ import annotations

import asyncio
import json
from http.client import HTTPException

import pytest

from repro.exceptions import JobError
from repro.service.client import MosaicServiceClient, ServiceClientError

from tests.service.http.conftest import run_async

STREAM_DROP = (ConnectionError, HTTPException, OSError)


def make_events(total: int) -> list[dict]:
    events = []
    for seq in range(total):
        terminal = seq == total - 1
        events.append(
            {
                "job_id": "job-1",
                "seq": seq,
                "kind": "state" if terminal else "sweep",
                "payload": {"state": "DONE"} if terminal else {"sweep": seq},
                "terminal": terminal,
            }
        )
    return events


class FlakyStreamServer:
    """Serves ``/v1/jobs/job-1/events``, cutting the connection after a
    scripted number of events on each successive attempt."""

    def __init__(
        self,
        events: list[dict],
        cuts: list[int | None],
        *,
        honor_from_seq: bool = True,
    ) -> None:
        self.events = events
        self.cuts = cuts  # per-attempt event budget; None = serve to end
        self.honor_from_seq = honor_from_seq
        self.attempts: list[int] = []  # from_seq of each attempt
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    async def __aenter__(self) -> "FlakyStreamServer":
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            while (await reader.readline()) not in (b"\r\n", b""):
                pass
            target = request_line.split()[1].decode()
            from_seq = 0
            if "from_seq=" in target:
                from_seq = int(target.split("from_seq=")[1].split("&")[0])
            self.attempts.append(from_seq)
            budget = (
                self.cuts[len(self.attempts) - 1]
                if len(self.attempts) <= len(self.cuts)
                else None
            )
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )
            sent = 0
            for event in self.events:
                if self.honor_from_seq and event["seq"] < from_seq:
                    continue
                if budget is not None and sent >= budget:
                    # Scripted mid-stream death: no terminating chunk.
                    writer.close()
                    return
                line = (json.dumps(event) + "\n").encode()
                writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
                await writer.drain()
                sent += 1
            writer.write(b"0\r\n\r\n")
            await writer.drain()
            writer.close()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass


async def collect_events(server: FlakyStreamServer, **kwargs) -> list[dict]:
    client = MosaicServiceClient(
        f"http://127.0.0.1:{server.port}", timeout=5.0
    )
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(
        None,
        lambda: list(
            client.events("job-1", reconnect_delay=0.01, **kwargs)
        ),
    )


class TestEventResume:
    def test_clean_stream_no_reconnect(self):
        async def main():
            async with FlakyStreamServer(make_events(6), cuts=[None]) as server:
                events = await collect_events(server)
                assert [e["seq"] for e in events] == list(range(6))
                assert server.attempts == [0]

        run_async(main())

    def test_reconnects_resume_past_last_seen_seq(self):
        async def main():
            # Die after 2, then after 2 more, then serve to the end.
            async with FlakyStreamServer(
                make_events(8), cuts=[2, 2, None]
            ) as server:
                events = await collect_events(server)
                assert [e["seq"] for e in events] == list(range(8))
                assert sum(e["terminal"] for e in events) == 1
                assert server.attempts == [0, 2, 4]

        run_async(main())

    def test_overlapping_replay_is_deduplicated(self):
        async def main():
            # Server ignores from_seq on retries (replays everything);
            # the client must still never re-yield a seq.
            async with FlakyStreamServer(
                make_events(5), cuts=[2, None], honor_from_seq=False
            ) as server:
                received = await collect_events(server)
                seqs = [e["seq"] for e in received]
                assert seqs == list(range(5))
                assert server.attempts == [0, 2]  # asked to resume, ignored

        run_async(main())

    def test_gives_up_after_max_reconnects(self):
        async def main():
            # One event of progress, then attempts that die immediately:
            # the drop counter only resets on progress, so consecutive
            # empty reconnects exhaust the budget.
            async with FlakyStreamServer(
                make_events(10), cuts=[1, 0, 0, 0, 0]
            ) as server:
                with pytest.raises(STREAM_DROP):
                    await collect_events(server, max_reconnects=2)
                assert len(server.attempts) == 3  # initial + 2 retries

        run_async(main())

    def test_progress_resets_reconnect_budget(self):
        async def main():
            # Every attempt yields one event before dying; because each
            # reconnect makes progress, a small budget still finishes.
            async with FlakyStreamServer(
                make_events(5), cuts=[1, 1, 1, 1, None]
            ) as server:
                events = await collect_events(server, max_reconnects=2)
                assert [e["seq"] for e in events] == list(range(5))
                assert server.attempts == [0, 1, 2, 3, 4]

        run_async(main())

    def test_reconnect_disabled_surfaces_drop(self):
        async def main():
            async with FlakyStreamServer(make_events(4), cuts=[2]) as server:
                with pytest.raises(STREAM_DROP):
                    await collect_events(server, reconnect=False)
                assert server.attempts == [0]

        run_async(main())

    def test_from_seq_skips_prefix(self):
        async def main():
            async with FlakyStreamServer(make_events(6), cuts=[None]) as server:
                events = await collect_events(server, from_seq=3)
                assert [e["seq"] for e in events] == [3, 4, 5]
                assert server.attempts == [3]

        run_async(main())


class TestErrorMapping:
    def test_http_error_maps_to_service_error(self):
        async def main():
            async def handle(reader, writer):
                await reader.readline()
                while (await reader.readline()) not in (b"\r\n", b""):
                    pass
                body = json.dumps({"error": "unknown job 'job-9'"}).encode()
                writer.write(
                    b"HTTP/1.1 404 Not Found\r\nContent-Type: application/json\r\n"
                    + b"Content-Length: %d\r\n\r\n" % len(body)
                    + body
                )
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = MosaicServiceClient(f"http://127.0.0.1:{port}", timeout=5.0)
            loop = asyncio.get_running_loop()
            with pytest.raises(ServiceClientError) as excinfo:
                await loop.run_in_executor(None, client.job, "job-9")
            assert excinfo.value.status == 404
            assert "job-9" in str(excinfo.value)
            server.close()
            await server.wait_closed()

        run_async(main())

    def test_rejects_non_http_scheme(self):
        with pytest.raises(JobError, match="http"):
            MosaicServiceClient("ftp://example.com")


class TestReconnectJitter:
    """Seeded jitter on the reconnect backoff (herd spreading)."""

    @staticmethod
    async def collect_sleeps(
        server: FlakyStreamServer, *, jitter_seed, **kwargs
    ) -> list[float]:
        client = MosaicServiceClient(
            f"http://127.0.0.1:{server.port}", timeout=5.0, jitter_seed=jitter_seed
        )
        sleeps: list[float] = []
        client._sleep = sleeps.append
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None,
            lambda: list(client.events("job-1", reconnect_delay=0.02, **kwargs)),
        )
        return sleeps

    def test_jittered_delays_stay_in_band(self):
        async def main():
            async with FlakyStreamServer(
                make_events(8), cuts=[2, 2, 2, None]
            ) as server:
                sleeps = await self.collect_sleeps(server, jitter_seed=7)
                assert len(sleeps) == 3  # one per reconnect
                for delay in sleeps:
                    assert 0.02 <= delay <= 0.02 * 1.5  # default jitter 0.5

        run_async(main())

    def test_same_seed_same_delays_different_seed_spreads(self):
        async def run_with(seed):
            async with FlakyStreamServer(
                make_events(8), cuts=[2, 2, 2, None]
            ) as server:
                return await self.collect_sleeps(server, jitter_seed=seed)

        async def main():
            first = await run_with(11)
            second = await run_with(11)
            other = await run_with(12)
            assert first == second  # reproducible runs
            assert first != other  # distinct clients desynchronize
            assert len(set(first)) == len(first)  # and drift between retries

        run_async(main())

    def test_zero_jitter_gives_exact_backoff(self):
        async def main():
            async with FlakyStreamServer(
                make_events(6), cuts=[2, 2, None]
            ) as server:
                sleeps = await self.collect_sleeps(
                    server, jitter_seed=None, reconnect_jitter=0.0
                )
                assert sleeps == [0.02, 0.02]

        run_async(main())

    def test_negative_jitter_rejected(self):
        client = MosaicServiceClient("http://127.0.0.1:1")
        with pytest.raises(JobError, match="reconnect_jitter"):
            list(client.events("job-1", reconnect_jitter=-0.1))
