"""End-to-end tests for the HTTP/WebSocket front over real sockets.

Each test spins up the full stack — WorkerPool, MosaicGateway,
HttpFront on an ephemeral loopback port — and talks to it like a remote
client would: via the stdlib client library (run in executor threads, as
the loop itself is serving) or via hand-written raw requests when the
exact bytes matter.
"""

from __future__ import annotations

import asyncio
import base64
import json
import os

import pytest

from repro.service.client import (
    AuthenticationError,
    BackpressureError,
    MosaicServiceClient,
    ServiceClientError,
)
from repro.service.http import websocket as ws

from tests.service.http.conftest import (
    GatedRunner,
    ServedFront,
    SweepRunner,
    echo_runner,
    raw_request,
    run_async,
    spec_dict,
)


def assert_ordered_stream(events: list[dict], state: str = "DONE") -> None:
    """One well-formed stream: seq 0..n, exactly one terminal, last."""
    assert events, "stream yielded nothing"
    assert [e["seq"] for e in events] == list(range(len(events)))
    assert events[0]["kind"] == "admitted"
    assert sum(e["terminal"] for e in events) == 1
    assert events[-1]["terminal"]
    assert events[-1]["payload"]["state"] == state


async def ws_stream(
    port: int,
    job_id: str,
    *,
    from_seq: int = 0,
    token: str | None = None,
    stop_after: int | None = None,
) -> list[dict]:
    """Collect a job's events over a WebSocket upgrade on the raw socket."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    key = base64.b64encode(os.urandom(16)).decode("ascii")
    path = f"/v1/jobs/{job_id}/events"
    if from_seq:
        path += f"?from_seq={from_seq}"
    headers = [
        f"GET {path} HTTP/1.1",
        "Host: test",
        "Upgrade: websocket",
        "Connection: Upgrade",
        f"Sec-WebSocket-Key: {key}",
        "Sec-WebSocket-Version: 13",
    ]
    if token:
        headers.append(f"Authorization: Bearer {token}")
    writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("ascii"))
    await writer.drain()
    status_line = await reader.readline()
    assert b"101" in status_line, status_line
    accept_header = None
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
        name, _, value = line.decode().partition(":")
        if name.strip().lower() == "sec-websocket-accept":
            accept_header = value.strip()
    assert accept_header == ws.accept_key(key)
    events: list[dict] = []
    try:
        while True:
            opcode, payload = await ws.read_frame(reader)
            if opcode == ws.OP_CLOSE:
                writer.write(ws.encode_frame(ws.OP_CLOSE, payload, mask=True))
                await writer.drain()
                break
            if opcode == ws.OP_TEXT:
                events.append(json.loads(payload))
                if stop_after is not None and len(events) >= stop_after:
                    break  # simulated client disconnect mid-stream
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    return events


class TestEndToEnd:
    def test_concurrent_clients_ordered_streams_ndjson_and_ws(self):
        """The acceptance scenario: N concurrent clients, each receiving
        its full ordered stream, over both transports at once."""

        async def main():
            async with ServedFront(SweepRunner(sweeps=6), workers=3) as served:
                client = MosaicServiceClient(served.base_url)
                jobs = await asyncio.gather(
                    *[
                        served.call(client.submit, spec_dict(f"job{i}"))
                        for i in range(6)
                    ]
                )
                assert all("job_id" in job for job in jobs)
                # First half over NDJSON, second half over WebSocket, all
                # streams consumed concurrently.
                ndjson_tasks = [
                    served.call(lambda jid=j["job_id"]: list(client.events(jid)))
                    for j in jobs[:3]
                ]
                ws_tasks = [
                    ws_stream(served.port, j["job_id"]) for j in jobs[3:]
                ]
                streams = await asyncio.gather(*ndjson_tasks, *ws_tasks)
                for events in streams:
                    assert_ordered_stream(events)
                    assert sum(e["kind"] == "sweep" for e in events) == 6
                # Every stream belongs to the job that was asked for.
                for job, events in zip(jobs[:3] + jobs[3:], streams):
                    assert {e["job_id"] for e in events} == {job["job_id"]}

        run_async(main())

    def test_submit_validates_spec(self):
        async def main():
            async with ServedFront(echo_runner) as served:
                client = MosaicServiceClient(served.base_url)
                with pytest.raises(ServiceClientError) as excinfo:
                    await served.call(
                        client.submit, {"input": "a", "target": "b", "bogus": 1}
                    )
                assert excinfo.value.status == 400
                assert "bogus" in str(excinfo.value)
                with pytest.raises(ServiceClientError) as excinfo:
                    await served.call(client.submit, {"input": "only"})
                assert excinfo.value.status == 400

        run_async(main())

    def test_job_listing_and_single_job(self):
        async def main():
            async with ServedFront(echo_runner) as served:
                client = MosaicServiceClient(served.base_url)
                job = await served.call(client.submit, spec_dict("solo"))
                await served.call(
                    lambda: list(client.events(job["job_id"]))
                )
                listing = await served.call(client.jobs)
                assert [j["name"] for j in listing] == ["solo"]
                one = await served.call(client.job, job["job_id"])
                assert one["state"] == "DONE"
                with pytest.raises(ServiceClientError) as excinfo:
                    await served.call(client.job, "job-nope")
                assert excinfo.value.status == 404

        run_async(main())

    def test_delete_cancels_inflight_job(self):
        async def main():
            runner = GatedRunner()
            async with ServedFront(runner, workers=1) as served:
                client = MosaicServiceClient(served.base_url)
                job = await served.call(client.submit, spec_dict("victim"))
                await served.call(runner.started.wait)
                assert await served.call(client.cancel, job["job_id"])
                events = await served.call(
                    lambda: list(client.events(job["job_id"]))
                )
                assert_ordered_stream(events, state="CANCELLED")
                runner.gate.set()

        run_async(main())

    def test_delete_unknown_job_404(self):
        async def main():
            async with ServedFront(echo_runner) as served:
                client = MosaicServiceClient(served.base_url)
                with pytest.raises(ServiceClientError) as excinfo:
                    await served.call(client.cancel, "job-unknown")
                assert excinfo.value.status == 404

        run_async(main())


class TestBackpressure:
    def test_admission_full_is_429_with_retry_after(self):
        async def main():
            runner = GatedRunner()
            async with ServedFront(
                runner, workers=1, max_pending=2, retry_after=2.5
            ) as served:
                client = MosaicServiceClient(served.base_url)
                await served.call(client.submit, spec_dict("a"))
                await served.call(client.submit, spec_dict("b"))
                with pytest.raises(BackpressureError) as excinfo:
                    await served.call(client.submit, spec_dict("c"))
                assert excinfo.value.retry_after == pytest.approx(2.5)
                # The raw response carries the header itself.
                body = json.dumps(spec_dict("d")).encode()
                raw = await raw_request(
                    served.port,
                    b"POST /v1/jobs HTTP/1.1\r\nContent-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body,
                )
                assert raw.startswith(b"HTTP/1.1 429 ")
                assert b"Retry-After: 2.5" in raw
                runner.gate.set()

        run_async(main())

    def test_submit_when_admitted_retries_through(self):
        async def main():
            async with ServedFront(
                SweepRunner(sweeps=2), workers=2, max_pending=2
            ) as served:
                client = MosaicServiceClient(served.base_url)

                def submit_all():
                    return [
                        client.submit_when_admitted(spec_dict(f"w{i}"))
                        for i in range(6)
                    ]

                jobs = await served.call(submit_all)
                assert len(jobs) == 6

        run_async(main())

    def test_stream_limit_503(self):
        async def main():
            runner = GatedRunner()
            async with ServedFront(
                runner, workers=1, max_concurrent_streams=1
            ) as served:
                client = MosaicServiceClient(served.base_url)
                job = await served.call(client.submit, spec_dict("streamy"))
                # Hold one stream open, raw, without consuming it fully.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", served.port
                )
                writer.write(
                    f"GET /v1/jobs/{job['job_id']}/events HTTP/1.1\r\n"
                    "Host: t\r\n\r\n".encode()
                )
                await writer.drain()
                assert b"200" in await reader.readline()
                second = await raw_request(
                    served.port,
                    f"GET /v1/jobs/{job['job_id']}/events HTTP/1.1\r\n"
                    "Host: t\r\n\r\n".encode(),
                )
                assert second.startswith(b"HTTP/1.1 503 ")
                assert b"Retry-After:" in second
                writer.close()
                runner.gate.set()

        run_async(main())


class TestAuth:
    def test_v1_routes_require_bearer_token(self):
        async def main():
            async with ServedFront(echo_runner, auth_token="s3cret") as served:
                anonymous = MosaicServiceClient(served.base_url)
                with pytest.raises(AuthenticationError):
                    await served.call(anonymous.submit, spec_dict())
                with pytest.raises(AuthenticationError):
                    await served.call(anonymous.jobs)
                wrong = MosaicServiceClient(served.base_url, token="wrong")
                with pytest.raises(AuthenticationError):
                    await served.call(wrong.jobs)
                # Probes and scrapers stay open.
                assert (await served.call(anonymous.health))["status"] == "ok"
                assert "http_requests_total" in await served.call(
                    anonymous.metrics_text
                )
                authed = MosaicServiceClient(served.base_url, token="s3cret")
                job = await served.call(authed.submit, spec_dict("authed"))
                events = await served.call(
                    lambda: list(authed.events(job["job_id"]))
                )
                assert_ordered_stream(events)
                # The 401 carries a challenge header.
                raw = await raw_request(
                    served.port, b"GET /v1/jobs HTTP/1.1\r\nHost: t\r\n\r\n"
                )
                assert raw.startswith(b"HTTP/1.1 401 ")
                assert b"WWW-Authenticate: Bearer" in raw

        run_async(main())

    def test_websocket_upgrade_requires_token_too(self):
        async def main():
            async with ServedFront(
                SweepRunner(sweeps=2), auth_token="s3cret"
            ) as served:
                client = MosaicServiceClient(served.base_url, token="s3cret")
                job = await served.call(client.submit, spec_dict("wsauth"))
                events = await ws_stream(
                    served.port, job["job_id"], token="s3cret"
                )
                assert_ordered_stream(events)
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", served.port
                )
                writer.write(
                    f"GET /v1/jobs/{job['job_id']}/events HTTP/1.1\r\n"
                    "Host: t\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n"
                    "Sec-WebSocket-Key: AAAAAAAAAAAAAAAAAAAAAA==\r\n"
                    "Sec-WebSocket-Version: 13\r\n\r\n".encode()
                )
                await writer.drain()
                assert b"401" in await reader.readline()
                writer.close()

        run_async(main())


class TestProtocolEdges:
    def test_unknown_routes_and_methods(self):
        async def main():
            async with ServedFront(echo_runner) as served:
                for request, status in [
                    (b"GET /nope HTTP/1.1\r\n\r\n", b"404"),
                    (b"PUT /v1/jobs HTTP/1.1\r\nContent-Length: 0\r\n\r\n", b"405"),
                    (b"DELETE /metrics HTTP/1.1\r\n\r\n", b"405"),
                    (b"POST /v1/jobs HTTP/1.1\r\n\r\n", b"411"),
                ]:
                    raw = await raw_request(served.port, request)
                    assert raw.startswith(b"HTTP/1.1 " + status), (request, raw[:40])

        run_async(main())

    def test_body_limit_enforced(self):
        async def main():
            async with ServedFront(echo_runner, max_body_bytes=256) as served:
                body = json.dumps(spec_dict(name="x" * 512)).encode()
                raw = await raw_request(
                    served.port,
                    b"POST /v1/jobs HTTP/1.1\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body,
                )
                assert raw.startswith(b"HTTP/1.1 413 ")

        run_async(main())

    def test_bad_json_body_400(self):
        async def main():
            async with ServedFront(echo_runner) as served:
                raw = await raw_request(
                    served.port,
                    b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!",
                )
                assert raw.startswith(b"HTTP/1.1 400 ")

        run_async(main())

    def test_keep_alive_serves_sequential_requests(self):
        async def main():
            async with ServedFront(echo_runner) as served:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", served.port
                )
                for _ in range(3):
                    writer.write(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                    await writer.drain()
                    status = await reader.readline()
                    assert b"200" in status
                    length = 0
                    while True:
                        line = await reader.readline()
                        if line in (b"\r\n", b""):
                            break
                        if line.lower().startswith(b"content-length"):
                            length = int(line.split(b":")[1])
                    body = await reader.readexactly(length)
                    assert json.loads(body)["status"] == "ok"
                writer.close()

        run_async(main())

    def test_negative_from_seq_400(self):
        async def main():
            async with ServedFront(echo_runner) as served:
                client = MosaicServiceClient(served.base_url)
                job = await served.call(client.submit, spec_dict())
                raw = await raw_request(
                    served.port,
                    f"GET /v1/jobs/{job['job_id']}/events?from_seq=-1 "
                    "HTTP/1.1\r\n\r\n".encode(),
                )
                assert raw.startswith(b"HTTP/1.1 400 ")
                raw = await raw_request(
                    served.port,
                    b"GET /v1/jobs/job-missing/events HTTP/1.1\r\n\r\n",
                )
                assert raw.startswith(b"HTTP/1.1 404 ")

        run_async(main())


class TestMetricsEndpoint:
    def test_prometheus_exposition_is_valid_and_live(self):
        async def main():
            async with ServedFront(SweepRunner(sweeps=3)) as served:
                client = MosaicServiceClient(served.base_url)
                job = await served.call(client.submit, spec_dict("measured"))
                await served.call(lambda: list(client.events(job["job_id"])))
                text = await served.call(client.metrics_text)
                metrics = parse_prometheus(text)
                assert metrics["types"]["http_requests_total"] == "counter"
                assert metrics["types"]["gateway_pending"] == "gauge"
                assert (
                    metrics["types"]["http_request_latency_seconds"] == "histogram"
                )
                assert metrics["samples"]["gateway_admitted"] == 1
                assert metrics["samples"]["http_responses_2xx_total"] >= 2
                # Histogram invariants: monotone buckets, count matches +Inf.
                buckets = metrics["buckets"]["http_request_latency_seconds"]
                values = [count for _, count in buckets]
                assert values == sorted(values)
                assert buckets[-1][0] == "+Inf"
                assert (
                    metrics["samples"]["http_request_latency_seconds_count"]
                    == buckets[-1][1]
                )

        run_async(main())


def parse_prometheus(text: str) -> dict:
    """Strict-enough parser for the text exposition format."""
    types: dict[str, str] = {}
    samples: dict[str, float] = {}
    buckets: dict[str, list[tuple[str, float]]] = {}
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), line
            types[name] = kind
            continue
        if line.startswith("#"):
            assert line.startswith("# HELP "), line
            continue
        name_and_labels, _, value = line.rpartition(" ")
        assert name_and_labels and value, line
        number = float(value)
        if "{" in name_and_labels:
            name, _, labels = name_and_labels.partition("{")
            assert labels.endswith("}"), line
            assert name.endswith("_bucket"), line
            le = labels[:-1].split("=")[1].strip('"')
            buckets.setdefault(name[: -len("_bucket")], []).append((le, number))
        else:
            samples[name_and_labels] = number
    for name in buckets:
        assert types.get(name) == "histogram"
        assert f"{name}_sum" in samples and f"{name}_count" in samples
    return {"types": types, "samples": samples, "buckets": buckets}


class TestGracefulDrain:
    def test_drain_rejects_new_work_but_finishes_streams(self):
        async def main():
            runner = GatedRunner()
            async with ServedFront(runner, workers=1) as served:
                client = MosaicServiceClient(served.base_url)
                job = await served.call(client.submit, spec_dict("drainee"))
                await served.call(runner.started.wait)
                # Open the stream before drain starts, on a raw socket.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", served.port
                )
                writer.write(
                    f"GET /v1/jobs/{job['job_id']}/events HTTP/1.1\r\n"
                    "Host: t\r\nConnection: close\r\n\r\n".encode()
                )
                await writer.drain()
                assert b"200" in await reader.readline()

                served.front.begin_drain()
                # New connections are refused outright.
                with pytest.raises(OSError):
                    await asyncio.open_connection("127.0.0.1", served.port)
                # The held stream still runs to its terminal event.
                runner.gate.set()
                payload = await reader.read()
                lines = [
                    json.loads(chunk)
                    for chunk in payload.decode().split("\r\n")
                    if chunk.strip().startswith("{")
                ]
                assert lines[-1]["terminal"]
                assert lines[-1]["payload"]["state"] == "DONE"
                writer.close()

        run_async(main())

    def test_draining_keep_alive_connection_gets_503(self):
        async def main():
            async with ServedFront(echo_runner) as served:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", served.port
                )
                writer.write(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                assert b"200" in await reader.readline()
                while (await reader.readline()) != b"\r\n":
                    pass
                # note: body is Content-Length framed; read it out.
                served.front.begin_drain()
                writer.write(b"GET /v1/jobs HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                data = await reader.read()
                assert b"503" in data
                assert b"Retry-After" in data
                writer.close()

        run_async(main())
