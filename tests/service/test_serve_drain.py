"""Graceful-drain tests for the two serving CLIs, over real processes.

Both ``photomosaic serve`` (NDJSON over stdin/stdout) and
``photomosaic serve-http`` must treat the first SIGINT/SIGTERM as a
drain request: stop taking new work, let admitted jobs run to their
terminal event, then exit 0 — not die mid-job.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

JOB_LINE = (
    json.dumps(
        {
            "input": "portrait",
            "target": "sailboat",
            "size": 64,
            "tile_size": 8,
            "name": "drainee",
        }
    )
    + "\n"
)


def spawn(*argv: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


def read_until(process: subprocess.Popen, kind: str, deadline: float = 30.0):
    """Read NDJSON stdout lines until one with ``kind`` arrives."""
    lines = []
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        line = process.stdout.readline()
        if not line:
            break
        record = json.loads(line)
        lines.append(record)
        if record.get("kind") == kind:
            return record, lines
    raise AssertionError(
        f"no {kind!r} line within {deadline}s; saw "
        f"{[r.get('kind') for r in lines]}"
    )


def finish(process: subprocess.Popen, timeout: float = 30.0) -> tuple[str, str]:
    try:
        out, err = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        out, err = process.communicate()
        raise AssertionError(f"process did not exit; stderr:\n{err}")
    return out, err


class TestServeStdinDrain:
    def test_sigint_drains_in_flight_job_then_exits(self, tmp_path):
        process = spawn(
            "serve", "--workers", "1", "--outdir", str(tmp_path / "out")
        )
        try:
            process.stdin.write(JOB_LINE)
            process.stdin.flush()
            admitted, _ = read_until(process, "admitted")
            job_id = admitted["job_id"]

            process.send_signal(signal.SIGINT)
            draining, _ = read_until(process, "draining")
            assert draining["terminal"] is False

            # The admitted job still runs to a real terminal event even
            # though stdin stays open (signal, not EOF, ended intake).
            terminal = None
            while terminal is None or not terminal["terminal"]:
                terminal, _ = read_until(process, "state")
            assert terminal["job_id"] == job_id
            assert terminal["terminal"] is True
            assert terminal["payload"]["state"] == "DONE"

            _, err = finish(process)
            assert process.returncode == 0, err
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

    def test_second_sigint_cancels_in_flight_jobs(self, tmp_path):
        process = spawn(
            "serve",
            "--workers", "1",
            "--outdir", str(tmp_path / "out"),
            # A big job so it is still mid-sweep when the signals land.
            "--timeout", "120",
        )
        big_job = json.dumps(
            {
                "input": "portrait",
                "target": "sailboat",
                "size": 256,
                "tile_size": 4,
                "name": "victim",
            }
        )
        try:
            process.stdin.write(big_job + "\n")
            process.stdin.flush()
            read_until(process, "sweep")
            process.send_signal(signal.SIGINT)
            read_until(process, "draining")
            process.send_signal(signal.SIGINT)
            terminal = None
            while terminal is None or not terminal["terminal"]:
                terminal, _ = read_until(process, "state")
            assert terminal["terminal"] is True
            assert terminal["payload"]["state"] in ("CANCELLED", "DONE")
            finish(process)
            assert process.returncode == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()


class TestServeHttpDrain:
    def test_sigterm_drains_and_reports(self, tmp_path):
        process = spawn(
            "serve-http",
            "--port", "0",
            "--workers", "1",
            "--outdir", str(tmp_path / "out"),
        )
        try:
            listening = json.loads(process.stdout.readline())
            assert listening["kind"] == "listening"
            port = listening["port"]
            assert port > 0

            from repro.service.client import MosaicServiceClient

            client = MosaicServiceClient(f"http://127.0.0.1:{port}")
            job = client.submit(json.loads(JOB_LINE))
            events = list(client.events(job["job_id"]))
            assert events[-1]["terminal"]
            assert events[-1]["payload"]["state"] == "DONE"

            process.send_signal(signal.SIGTERM)
            out, err = finish(process)
            assert process.returncode == 0, err
            records = [json.loads(line) for line in out.splitlines() if line]
            assert records[-1]["kind"] == "drained"
            assert records[-1]["jobs"] == 1
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
