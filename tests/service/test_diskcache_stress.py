"""Multi-process stress tests for the shared disk store.

Four *process* workers hammer one store concurrently.  The suite asserts
the three contracts that make the store safe to share:

* **exactly-once compute** — racing ``get_or_compute`` calls on the same
  key run the compute callable once machine-wide (proved by a
  filesystem compute-counter appended to on every compute);
* **no torn reads** — every value a worker ever observes is bit-exact
  for its key, even while other workers write and evict;
* **budget** — after concurrent eviction the store's payload bytes
  respect ``max_bytes``.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.service.diskcache import DiskCacheStore

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", "src"))
WORKERS = 4

# Four-process stress runs are legitimately slow on loaded CI machines;
# give them a generous ceiling instead of letting a stall hang the run
# (enforced when pytest-timeout is installed, inert otherwise).
pytestmark = pytest.mark.timeout(180)

# Body shared by both stress scenarios.  A worker waits on the go-file
# barrier (so all four hammer at once), then loops its key schedule
# through get_or_compute, verifying every returned value bit-exactly and
# appending one line to the key's compute-counter file per compute call
# (O_APPEND single-line writes are atomic on POSIX).  It writes
# ok-<id>.txt only if every check passed.
_WORKER_BODY = """
import hashlib, os, sys, time
import numpy as np
from repro.service.diskcache import DiskCacheStore

root, counters, worker_id = sys.argv[1], sys.argv[2], int(sys.argv[3])
budget, slow = int(sys.argv[4]), sys.argv[5] == "slow"
keys = sys.argv[6].split(",")

def expected(key):
    seed = int(hashlib.sha256(key.encode()).hexdigest()[:8], 16)
    return np.random.default_rng(seed).integers(0, 256, size=2048).astype(np.uint8)

def make_compute(key):
    def compute():
        if slow:
            time.sleep(0.05)  # widen the race window
        with open(os.path.join(counters, key.replace("/", "_") + ".txt"),
                  "a") as fh:
            fh.write(f"{os.getpid()}\\n")
        return expected(key)
    return compute

store = DiskCacheStore(root, max_bytes=budget)
go = os.path.join(root, "go")
deadline = time.monotonic() + 30
while not os.path.exists(go):
    if time.monotonic() > deadline:
        sys.exit(3)
    time.sleep(0.002)
rng = np.random.default_rng(worker_id)
for _round in range(4):
    for key in rng.permutation(keys):
        value = store.get_or_compute(str(key), make_compute(str(key)))
        want = expected(str(key))
        if value.tobytes() != want.tobytes():  # torn or wrong read
            sys.exit(4)
with open(os.path.join(root, f"ok-{worker_id}.txt"), "w") as fh:
    fh.write("ok")
"""


def _run_workers(root, counters, keys_per_worker, budget, slow):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    procs = [
        subprocess.Popen(
            [
                sys.executable,
                "-c",
                _WORKER_BODY,
                os.fspath(root),
                os.fspath(counters),
                str(worker_id),
                str(budget),
                "slow" if slow else "fast",
                ",".join(keys_per_worker[worker_id]),
            ],
            env=env,
        )
        for worker_id in range(WORKERS)
    ]
    open(os.path.join(root, "go"), "w").close()  # barrier: all start together
    try:
        for proc in procs:
            proc.wait(timeout=120)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
    return [proc.returncode for proc in procs]


@pytest.fixture()
def stress_dirs(tmp_path):
    root = tmp_path / "cache"
    counters = tmp_path / "counters"
    root.mkdir()
    counters.mkdir()
    return root, counters


def test_exactly_once_compute_across_processes(stress_dirs):
    """Identical + distinct keys, generous budget: one compute per key."""
    root, counters = stress_dirs
    shared = [f"matrix/shared{i}/t8/sad" for i in range(4)]
    keys_per_worker = [
        shared + [f"tiles/own-{worker_id}-{i}/t8" for i in range(3)]
        for worker_id in range(WORKERS)
    ]
    codes = _run_workers(
        root, counters, keys_per_worker, budget=1 << 30, slow=True
    )
    assert codes == [0] * WORKERS, codes
    every_key = set(shared) | {
        key for keys in keys_per_worker for key in keys
    }
    for key in every_key:
        counter = counters / (key.replace("/", "_") + ".txt")
        lines = counter.read_text().splitlines()
        assert len(lines) == 1, (
            f"{key} computed {len(lines)} times (by pids {lines})"
        )


def test_byte_budget_and_no_torn_reads_under_eviction(stress_dirs):
    """A budget far below the working set forces concurrent eviction;
    values stay bit-exact and the final footprint respects the budget."""
    root, counters = stress_dirs
    # ~2 KiB payloads, 24 distinct keys (~50 KiB working set), 16 KiB cap.
    budget = 16 << 10
    keys_per_worker = [
        [f"tiles/evict-{worker_id}-{i}/t8" for i in range(4)]
        + [f"matrix/churn{i}/t8/sad" for i in range(2)]
        for worker_id in range(WORKERS)
    ]
    codes = _run_workers(
        root, counters, keys_per_worker, budget=budget, slow=False
    )
    assert codes == [0] * WORKERS, codes
    store = DiskCacheStore(root, max_bytes=budget)
    stats = store.stats
    assert stats.current_bytes <= budget
    payload_bytes = sum(
        path.stat().st_size for path in (root / "store").rglob("*.npz")
    )
    assert payload_bytes <= budget
    # Surviving entries still round-trip bit-exactly after the churn.
    survivors = 0
    for keys in keys_per_worker:
        for key in keys:
            value = store.get(key)
            if value is not None:
                seed = int(hashlib.sha256(key.encode()).hexdigest()[:8], 16)
                want = np.random.default_rng(seed).integers(
                    0, 256, size=2048
                ).astype(np.uint8)
                assert value.tobytes() == want.tobytes()
                survivors += 1
    assert survivors >= 1
