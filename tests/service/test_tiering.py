"""Backend-tiering policy: threshold routing, overrides, fallback."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.service.jobs import JobSpec
from repro.service.tiering import BackendTieringPolicy, TierDecision


def _spec(**kwargs) -> JobSpec:
    base = dict(input="portrait", target="sailboat", size=64, tile_size=16)
    base.update(kwargs)
    return JobSpec(**base)


class TestPredictedPairs:
    def test_dense_is_grid_squared(self):
        # size 64 / tile 16 -> 4x4 grid -> S = 16 -> 256 pairs.
        assert BackendTieringPolicy.predicted_pairs(_spec()) == 256

    def test_sparse_is_grid_times_top_k(self):
        spec = _spec(shortlist_top_k=8)
        assert BackendTieringPolicy.predicted_pairs(spec) == 16 * 8

    def test_sparse_top_k_clamps_at_grid(self):
        spec = _spec(size=32, shortlist_top_k=16)  # grid S = 4
        assert BackendTieringPolicy.predicted_pairs(spec) == 4 * 4

    def test_library_uses_its_own_top_k(self):
        spec = _spec(kind="library", top_k=4)
        assert BackendTieringPolicy.predicted_pairs(spec) == 16 * 4


class TestRouting:
    def test_small_routes_to_numpy(self):
        policy = BackendTieringPolicy(threshold_pairs=1000)
        decision = policy.route(_spec())  # 256 pairs < 1000
        assert decision == TierDecision("numpy", "small", 256)

    def test_large_routes_to_large_tier(self):
        # "auto" resolves to the best available backend — numpy in CI.
        policy = BackendTieringPolicy(threshold_pairs=100)
        decision = policy.route(_spec())
        assert decision.reason == "large"
        assert decision.backend in ("numpy", "cupy")

    def test_threshold_is_inclusive_on_large_side(self):
        policy = BackendTieringPolicy(threshold_pairs=256)
        assert policy.route(_spec()).reason == "large"
        policy = BackendTieringPolicy(threshold_pairs=257)
        assert policy.route(_spec()).reason == "small"

    def test_spec_override_always_wins(self):
        policy = BackendTieringPolicy(threshold_pairs=1)
        decision = policy.route(_spec(backend="numpy"))
        assert decision.backend == "numpy"
        assert decision.reason == "override"

    def test_unavailable_large_backend_falls_back_to_numpy(self):
        # cupy is not installed in CI, so naming it outright must fall
        # back instead of failing the job.
        pytest.importorskip("numpy")
        try:
            import cupy  # noqa: F401

            pytest.skip("cupy available; fallback path not reachable")
        except ImportError:
            pass
        policy = BackendTieringPolicy(threshold_pairs=1, large_backend="cupy")
        decision = policy.route(_spec())
        assert decision == TierDecision("numpy", "fallback", 256)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValidationError):
            BackendTieringPolicy(threshold_pairs=0)
