"""Fault-injection suite for the disk store's corruption handling.

Every on-disk failure mode — truncation, bit-flips, zero-length files,
garbage sidecars, vanished payloads — must be absorbed: the entry is
quarantined, the ``cache_corruption_total`` counter ticks, and the
caller sees a clean miss (and a recompute via ``get_or_compute``), never
an exception.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.service import MetricsRegistry
from repro.service.cache import ArtifactCache, CacheStack
from repro.service.diskcache import DiskCacheStore

KEY = "matrix/fpa/fpb/t8/sad"
PAYLOAD_ARRAYS = (np.arange(256, dtype=np.float64).reshape(16, 16), None)


def _entry_paths(root, key=KEY):
    digest = DiskCacheStore._digest(key)
    shard = root / "store" / DiskCacheStore._algo(key) / digest[:2]
    return shard / f"{digest}.npz", shard / f"{digest}.json"


@pytest.fixture()
def seeded_store(tmp_path):
    metrics = MetricsRegistry()
    store = DiskCacheStore(tmp_path, metrics=metrics)
    store.put(KEY, PAYLOAD_ARRAYS)
    return store, tmp_path, metrics


def _truncate_half(path):
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(size // 2)


def _bit_flip(path):
    with open(path, "r+b") as fh:
        data = bytearray(fh.read())
        data[len(data) // 2] ^= 0x40
        fh.seek(0)
        fh.write(data)


def _zero_length(path):
    with open(path, "r+b") as fh:
        fh.truncate(0)


def _garbage_sidecar(path):
    path.write_text("definitely { not json")


def _missing_fields_sidecar(path):
    path.write_text(json.dumps({"key": KEY}))


CORRUPTIONS = {
    "truncated_payload": ("payload", _truncate_half),
    "bit_flipped_payload": ("payload", _bit_flip),
    "zero_length_payload": ("payload", _zero_length),
    "garbage_sidecar": ("sidecar", _garbage_sidecar),
    "sidecar_missing_fields": ("sidecar", _missing_fields_sidecar),
}


@pytest.mark.parametrize("name", sorted(CORRUPTIONS))
def test_corruption_becomes_miss_plus_quarantine(seeded_store, name):
    store, root, metrics = seeded_store
    target, corrupt = CORRUPTIONS[name]
    payload_path, sidecar_path = _entry_paths(root)
    corrupt(payload_path if target == "payload" else sidecar_path)

    assert store.get(KEY) is None  # never an exception
    assert store.stats.corruptions == 1
    assert metrics.as_dict()["counters"]["cache_corruption_total"] == 1
    # Both files were moved aside so the bad entry can never be re-read.
    assert not payload_path.exists() and not sidecar_path.exists()
    assert any((root / "quarantine").iterdir())


@pytest.mark.parametrize("name", sorted(CORRUPTIONS))
def test_corruption_recomputes_through_get_or_compute(seeded_store, name):
    store, root, metrics = seeded_store
    target, corrupt = CORRUPTIONS[name]
    payload_path, sidecar_path = _entry_paths(root)
    corrupt(payload_path if target == "payload" else sidecar_path)

    calls = []

    def recompute():
        calls.append(1)
        return PAYLOAD_ARRAYS

    value = store.get_or_compute(KEY, recompute)
    assert len(calls) == 1
    assert np.array_equal(value[0], PAYLOAD_ARRAYS[0]) and value[1] is None
    # The recomputed entry is healthy again: next read is a verified hit.
    again = store.get(KEY)
    assert np.array_equal(again[0], PAYLOAD_ARRAYS[0])
    assert store.stats.corruptions == 1  # only the original corruption


def test_payload_vanished_behind_sidecar(seeded_store):
    store, root, metrics = seeded_store
    payload_path, sidecar_path = _entry_paths(root)
    os.remove(payload_path)
    assert store.get(KEY) is None
    assert store.stats.corruptions == 1
    assert not sidecar_path.exists()  # orphan sidecar quarantined too


def test_quarantined_entry_leaves_index(seeded_store):
    store, root, _metrics = seeded_store
    payload_path, _ = _entry_paths(root)
    _bit_flip(payload_path)
    store.get(KEY)
    assert store.stats.entries == 0  # index pruned under its lock


def test_repeated_corruption_counts_each_event(seeded_store):
    store, root, metrics = seeded_store
    for expected in (1, 2):
        payload_path, _ = _entry_paths(root)
        _truncate_half(payload_path)
        assert store.get(KEY) is None
        assert store.stats.corruptions == expected
        store.put(KEY, PAYLOAD_ARRAYS)
    assert metrics.as_dict()["counters"]["cache_corruption_total"] == 2


def test_stack_absorbs_disk_corruption(tmp_path):
    """Through the two-tier stack the caller never sees disk faults."""
    metrics = MetricsRegistry()
    stack = CacheStack(
        memory=ArtifactCache(max_bytes=1 << 20),
        disk=DiskCacheStore(tmp_path, metrics=metrics),
    )
    stack.put(KEY, PAYLOAD_ARRAYS)
    stack.memory.clear()  # force the next lookup down to disk
    payload_path, _ = _entry_paths(tmp_path)
    _bit_flip(payload_path)

    calls = []

    def recompute():
        calls.append(1)
        return PAYLOAD_ARRAYS

    value = stack.get_or_compute(KEY, recompute)
    assert len(calls) == 1
    assert np.array_equal(value[0], PAYLOAD_ARRAYS[0])
    assert metrics.as_dict()["counters"]["cache_corruption_total"] == 1
    assert stack.stats.disk.corruptions == 1
