"""Tests for the batch manifest parser."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import JobError
from repro.service.manifest import load_manifest, parse_manifest


def manifest(**overrides) -> dict:
    base = {
        "defaults": {"target": "sailboat", "size": 64, "tile_size": 8},
        "jobs": [
            {"input": "portrait", "output": "a.png"},
            {"input": "peppers", "priority": 3},
        ],
    }
    base.update(overrides)
    return base


class TestParse:
    def test_defaults_merge_into_jobs(self):
        specs = parse_manifest(manifest())
        assert [s.input for s in specs] == ["portrait", "peppers"]
        assert all(s.target == "sailboat" for s in specs)
        assert all(s.tile_size == 8 for s in specs)
        assert specs[1].priority == 3

    def test_job_entry_overrides_defaults(self):
        data = manifest()
        data["jobs"][0]["tile_size"] = 16
        specs = parse_manifest(data)
        assert specs[0].tile_size == 16
        assert specs[1].tile_size == 8

    def test_auto_names(self):
        specs = parse_manifest(manifest())
        assert [s.name for s in specs] == ["job0", "job1"]

    def test_explicit_name_kept(self):
        data = manifest()
        data["jobs"][0]["name"] = "hero"
        assert parse_manifest(data)[0].name == "hero"

    def test_per_job_seeds_derived_from_batch_seed(self):
        first = parse_manifest(manifest(), seed=42)
        second = parse_manifest(manifest(), seed=42)
        other = parse_manifest(manifest(), seed=43)
        assert [s.seed for s in first] == [s.seed for s in second]
        assert [s.seed for s in first] != [s.seed for s in other]
        # Sibling jobs get distinct seeds.
        assert first[0].seed != first[1].seed

    def test_explicit_seed_wins(self):
        data = manifest()
        data["jobs"][0]["seed"] = 123
        assert parse_manifest(data, seed=0)[0].seed == 123


class TestValidation:
    def test_unknown_job_key_rejected(self):
        data = manifest()
        data["jobs"][0]["tile_sizee"] = 8
        with pytest.raises(JobError, match="tile_sizee"):
            parse_manifest(data)

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(JobError, match="unknown manifest keys"):
            parse_manifest(manifest(extra=1))

    def test_empty_jobs_rejected(self):
        with pytest.raises(JobError, match="non-empty 'jobs'"):
            parse_manifest(manifest(jobs=[]))

    def test_non_object_manifest_rejected(self):
        with pytest.raises(JobError, match="JSON object"):
            parse_manifest([1, 2, 3])

    def test_non_object_job_rejected(self):
        with pytest.raises(JobError, match=r"jobs\[0\]"):
            parse_manifest(manifest(jobs=["portrait"]))

    def test_missing_required_field_rejected(self):
        with pytest.raises(JobError, match=r"jobs\[0\] is invalid"):
            parse_manifest({"jobs": [{"target": "sailboat"}]})


class TestLoad:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(manifest()))
        specs = load_manifest(path, seed=7)
        assert len(specs) == 2

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(JobError, match="cannot read"):
            load_manifest(tmp_path / "nope.json")

    def test_invalid_json_errors(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(JobError, match="not valid JSON"):
            load_manifest(path)
