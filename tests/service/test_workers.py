"""Tests for the worker pool: concurrency, retries, timeouts, drain.

Most tests drive the pool with tiny synthetic runners so they are fast
and deterministic; the end-to-end mosaic tests at the bottom cover the
acceptance scenario (a batch sharing one target must exceed 50% cache
hit rate, and a timing-out job must fail without stalling the queue).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import JobError
from repro.service.cache import ArtifactCache
from repro.service.jobs import JobSpec, JobState
from repro.service.metrics import MetricsRegistry
from repro.service.workers import MosaicJobRunner, WorkerPool, resolve_image
from repro.utils.timing import TimingBreakdown


def spec(name: str = "j", **overrides) -> JobSpec:
    base = dict(input="portrait", target="sailboat", size=64, tile_size=8, name=name)
    base.update(overrides)
    return JobSpec(**base)


def _echo_runner(job_spec: JobSpec) -> str:
    return job_spec.name


def _sleepy_runner(job_spec: JobSpec) -> str:  # used by the process-kind test
    time.sleep(0.01)
    return job_spec.name


class FakeClock:
    """Drop-in for :class:`SystemClock` that records backoff sleeps and
    advances virtual time instead of blocking — retry tests assert the
    requested delays without ever sleeping for real."""

    def __init__(self) -> None:
        self.sleeps: list[float] = []
        self._now = 0.0
        self._lock = threading.Lock()

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self.sleeps.append(seconds)
            self._now += seconds


class BlockingRunner:
    """Runner that signals when it starts and blocks until released —
    replaces wall-clock sleeps when a test needs a busy worker."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.started = threading.Event()
        self.order: list[str] = []

    def __call__(self, job_spec: JobSpec) -> str:
        self.started.set()
        assert self.release.wait(timeout=10.0), "test never released the runner"
        self.order.append(job_spec.name)
        return job_spec.name


class TestPoolBasics:
    def test_runs_jobs_and_returns_records(self):
        with WorkerPool(workers=2, runner=_echo_runner) as pool:
            records = pool.run([spec(f"j{i}") for i in range(5)])
        assert [r.state for r in records] == [JobState.DONE] * 5
        assert sorted(r.result for r in records) == [f"j{i}" for i in range(5)]

    def test_deterministic_job_ids_across_pools(self):
        with WorkerPool(workers=1, runner=_echo_runner) as pool_a:
            ids_a = [pool_a.submit(spec(f"j{i}")).job_id for i in range(3)]
            pool_a.join()
        with WorkerPool(workers=1, runner=_echo_runner) as pool_b:
            ids_b = [pool_b.submit(spec(f"j{i}")).job_id for i in range(3)]
            pool_b.join()
        assert ids_a == ids_b

    def test_metrics_counters(self):
        metrics = MetricsRegistry()
        with WorkerPool(workers=2, runner=_echo_runner, metrics=metrics) as pool:
            pool.run([spec(f"j{i}") for i in range(4)])
        data = metrics.as_dict()
        assert data["counters"]["jobs_submitted"] == 4
        assert data["counters"]["jobs_done"] == 4
        assert data["histograms"]["queue_wait_seconds"]["count"] == 4
        assert data["histograms"]["job_latency_seconds"]["count"] == 4

    def test_timings_merged_from_results(self):
        class TimedResult:
            timings = TimingBreakdown({"step2_error_matrix": 0.25})
            total_error = 0
            sweeps = None

        with WorkerPool(workers=2, runner=lambda s: TimedResult()) as pool:
            pool.run([spec(f"j{i}") for i in range(4)])
            assert pool.timings["step2_error_matrix"] == pytest.approx(1.0)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(JobError, match="workers"):
            WorkerPool(workers=0)
        with pytest.raises(JobError, match="executor kind"):
            WorkerPool(kind="fiber")
        with pytest.raises(JobError, match="max_retries"):
            WorkerPool(max_retries=-1)

    def test_submit_after_shutdown_rejected(self):
        pool = WorkerPool(workers=1, runner=_echo_runner)
        pool.shutdown()
        with pytest.raises(JobError, match="shut down"):
            pool.submit(spec())


class TestPriorities:
    def test_high_priority_jobs_run_first(self):
        runner = BlockingRunner()
        pool = WorkerPool(workers=1, runner=runner)
        pool.submit(spec("blocker"))  # occupies the single worker
        assert runner.started.wait(timeout=5.0)
        pool.submit(spec("low", priority=0))
        pool.submit(spec("high", priority=9))
        runner.release.set()
        pool.join()
        pool.shutdown()
        assert runner.order == ["blocker", "high", "low"]


class TestRetries:
    def test_flaky_job_retries_then_succeeds(self):
        attempts = {"n": 0}

        def flaky(job_spec: JobSpec) -> str:
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        metrics = MetricsRegistry()
        clock = FakeClock()
        # The backoff is large on purpose: the fake clock proves the pool
        # sleeps virtually, so the test cannot become slow or flaky.
        with WorkerPool(
            workers=1, runner=flaky, metrics=metrics, max_retries=3,
            backoff=5.0, clock=clock,
        ) as pool:
            (record,) = pool.run([spec()])
        assert record.state is JobState.DONE
        assert record.attempts == 3
        assert metrics.counter("job_retries").value == 2
        assert len(clock.sleeps) == 2  # one backoff per retry
        assert all(delay > 0 for delay in clock.sleeps)
        # Exponential schedule: the second backoff waits longer.
        assert clock.sleeps[1] > clock.sleeps[0]

    def test_permanent_failure_exhausts_budget(self):
        def broken(job_spec: JobSpec) -> None:
            raise ValueError("always broken")

        metrics = MetricsRegistry()
        clock = FakeClock()
        with WorkerPool(
            workers=1, runner=broken, metrics=metrics, max_retries=2,
            backoff=5.0, clock=clock,
        ) as pool:
            (record,) = pool.run([spec()])
        assert record.state is JobState.FAILED
        assert record.attempts == 3
        assert "always broken" in record.error
        assert metrics.counter("jobs_failed").value == 1
        assert len(clock.sleeps) == 2  # no backoff after the final attempt

    def test_spec_retry_budget_overrides_pool_default(self):
        calls = {"n": 0}

        def broken(job_spec: JobSpec) -> None:
            calls["n"] += 1
            raise RuntimeError("nope")

        with WorkerPool(
            workers=1, runner=broken, max_retries=5, clock=FakeClock()
        ) as pool:
            (record,) = pool.run([spec(max_retries=0)])
        assert record.state is JobState.FAILED
        assert calls["n"] == 1


class TestTimeouts:
    def test_timeout_retries_then_fails_without_stalling(self):
        """The acceptance scenario: a hung job must be retried, marked
        FAILED, and must not block other jobs from completing."""

        hang = threading.Event()

        def runner(job_spec: JobSpec) -> str:
            if job_spec.name == "hung":
                hang.wait(timeout=30.0)  # released in the finally below
            return job_spec.name

        metrics = MetricsRegistry()
        pool = WorkerPool(
            workers=2, runner=runner, metrics=metrics, max_retries=1,
            backoff=5.0, clock=FakeClock(),
        )
        try:
            hung = pool.submit(spec("hung", timeout=0.05))
            quick = [pool.submit(spec(f"q{i}")) for i in range(4)]
            finished = pool.join(timeout=10.0)
        finally:
            hang.set()  # unblock abandoned attempts immediately
            pool.shutdown(timeout=5.0)
        assert finished
        assert hung.state is JobState.FAILED
        assert hung.attempts == 2
        assert "budget" in hung.error
        assert all(r.state is JobState.DONE for r in quick)
        assert metrics.counter("job_timeouts").value == 2

    def test_pool_default_timeout_applies(self):
        hang = threading.Event()

        def slow(job_spec: JobSpec) -> None:
            hang.wait(timeout=30.0)

        try:
            with WorkerPool(
                workers=1,
                runner=slow,
                max_retries=0,
                default_timeout=0.05,
                clock=FakeClock(),
            ) as pool:
                (record,) = pool.run([spec()])
        finally:
            hang.set()
        assert record.state is JobState.FAILED


class TestCancelAndShutdown:
    def test_cancel_pending_job(self):
        runner = BlockingRunner()
        pool = WorkerPool(workers=1, runner=runner)
        pool.submit(spec("blocker"))
        assert runner.started.wait(timeout=5.0)
        victim = pool.submit(spec("victim"))
        assert pool.cancel(victim.job_id) is True
        runner.release.set()
        assert pool.join(timeout=5.0)
        pool.shutdown()
        assert victim.state is JobState.CANCELLED

    def test_shutdown_no_drain_cancels_pending(self):
        runner = BlockingRunner()
        pool = WorkerPool(workers=1, runner=runner)
        pool.submit(spec("running"))
        assert runner.started.wait(timeout=5.0)
        pending = [pool.submit(spec(f"p{i}")) for i in range(3)]
        runner.release.set()
        pool.shutdown(drain=False, timeout=5.0)
        assert all(r.state is JobState.CANCELLED for r in pending)

    def test_drain_completes_queued_work(self):
        done: list[str] = []
        lock = threading.Lock()

        def runner(job_spec: JobSpec) -> None:
            with lock:
                done.append(job_spec.name)

        pool = WorkerPool(workers=2, runner=runner)
        for i in range(6):
            pool.submit(spec(f"j{i}"))
        pool.shutdown(drain=True, timeout=10.0)
        assert len(done) == 6


class TestProcessExecutor:
    def test_process_kind_runs_jobs(self):
        with WorkerPool(workers=2, kind="process", runner=_sleepy_runner) as pool:
            records = pool.run([spec(f"j{i}", timeout=30.0) for i in range(3)])
        assert [r.state for r in records] == [JobState.DONE] * 3
        assert sorted(r.result for r in records) == ["j0", "j1", "j2"]

    def test_runner_pickles_without_cache(self):
        import pickle

        runner = MosaicJobRunner(cache=ArtifactCache(), outdir="/tmp/x")
        clone = pickle.loads(pickle.dumps(runner))
        assert clone.cache is None
        assert clone.outdir == "/tmp/x"


class TestProcessSharedDiskCache:
    """Process workers share artifacts through one on-disk store."""

    @staticmethod
    def _pool(stack):
        return WorkerPool(
            workers=4,
            kind="process",
            runner=MosaicJobRunner(cache=stack),
            cache=stack,
            metrics=MetricsRegistry(),
            seed=0,
        )

    def test_second_batch_hits_disk_across_processes(self, tmp_path):
        from repro.service.cache import CacheStack
        from repro.service.diskcache import DiskCacheStore

        specs = [
            spec(f"j{i}", input=name)
            for i, name in enumerate(["portrait", "peppers", "barbara"])
        ]

        def run_batch():
            # A fresh stack per batch: only the on-disk store persists,
            # so any warm-batch hit must have come through the disk.
            stack = CacheStack(
                memory=ArtifactCache(),
                disk=DiskCacheStore(tmp_path / "cache"),
            )
            with self._pool(stack) as pool:
                records = pool.run(specs)
            assert all(r.state is JobState.DONE for r in records)
            return records

        run_batch()
        warm = run_batch()
        for record in warm:
            assert record.summary()["cache"] == {
                "step1_input": "hit",
                "step1_target": "hit",
                "step2_matrix": "hit",
            }

    def test_pool_folds_worker_cache_outcomes_into_metrics(self, tmp_path):
        from repro.service.cache import CacheStack
        from repro.service.diskcache import DiskCacheStore

        stack = CacheStack(disk=DiskCacheStore(tmp_path / "cache"))
        metrics = MetricsRegistry()
        pool = WorkerPool(
            workers=2,
            kind="process",
            runner=MosaicJobRunner(cache=stack),
            cache=stack,
            metrics=metrics,
            seed=0,
        )
        with pool:
            pool.run([spec("a"), spec("b")])  # cold: populates the disk store
            pool.run([spec("a"), spec("b")])  # warm: served across processes
        counters = metrics.as_dict()["counters"]
        # 4 jobs x 3 artifacts each; the warm batch's 6 artifacts were all
        # served from the shared store even though each attempt ran in its
        # own process with a fresh memory tier.
        assert counters["cache_artifact_hits"] + counters["cache_artifact_misses"] == 12
        assert counters["cache_artifact_hits"] >= 6


class TestMosaicIntegration:
    def test_batch_sharing_target_exceeds_half_cache_hits(self):
        """≥8 jobs sharing one target through the pool: hit rate > 0.5."""
        cache = ArtifactCache()
        metrics = MetricsRegistry()
        inputs = ["portrait", "peppers", "portrait", "barbara",
                  "portrait", "peppers", "baboon", "portrait"]
        specs = [
            spec(f"j{i}", input=name, target="sailboat") for i, name in enumerate(inputs)
        ]
        with WorkerPool(workers=4, cache=cache, metrics=metrics) as pool:
            records = pool.run(specs)
        assert all(r.state is JobState.DONE for r in records)
        assert cache.stats.hit_rate > 0.5
        # Identical inputs must produce identical mosaics through the cache.
        by_input: dict[str, int] = {}
        for record in records:
            error = record.result.total_error
            assert by_input.setdefault(record.spec.input, error) == error

    def test_cached_results_match_uncached(self):
        baseline_runner = MosaicJobRunner(cache=None)
        baseline = baseline_runner(spec())
        with WorkerPool(workers=2, cache=ArtifactCache()) as pool:
            records = pool.run([spec("a"), spec("b")])
        for record in records:
            assert record.result.total_error == baseline.total_error

    def test_resolve_image_rejects_unknown(self):
        with pytest.raises(JobError, match="neither"):
            resolve_image("no-such-image.png", 64)

    def test_job_summary_carries_timings(self):
        with WorkerPool(workers=1, cache=ArtifactCache()) as pool:
            (record,) = pool.run([spec()])
        summary = record.summary()
        assert summary["state"] == "DONE"
        assert "step2_error_matrix" in summary["timings"]
