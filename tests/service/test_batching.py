"""Step-2 micro-batching: coordinator semantics and pool integration.

Two layers under test.  The :class:`Step2BatchCoordinator` unit tests
pin the rendezvous mechanics — solo jobs never wait, announced peers
coalesce into one launch, full batches seal early, builder errors reach
every member.  The pool-level differential tests pin the contract that
matters to users: a batched pool produces **bit-identical** job results
(totals, permutations, rendered bytes) to an unbatched one, while
launching fewer Step-2 kernels.
"""

from __future__ import annotations

import hashlib
import threading
import time

import numpy as np
import pytest

from repro.cost.batch import BatchJob
from repro.service.batching import Step2BatchCoordinator, step2_fingerprint
from repro.service.jobs import JobSpec, JobState
from repro.service.metrics import MetricsRegistry
from repro.service.workers import WorkerPool

S, M = 16, 8


def _stack(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(S, M, M), dtype=np.uint8)


def _checksum(image: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(image, dtype=np.uint8).tobytes()
    ).hexdigest()


class TestFingerprint:
    def test_matches_generator_side_key(self):
        """Spec-derived and tile-derived fingerprints must rendezvous."""
        from repro.cost.batch import batch_fingerprint

        spec = JobSpec(
            input="portrait", target="sailboat", size=64, tile_size=16
        )
        assert step2_fingerprint(spec) == batch_fingerprint(
            grid_tiles=16,
            tile_shape=(16, 16),
            metric="sad",
            backend="numpy",
            top_k=0,
            sketch="mean",
        )

    def test_library_jobs_are_not_batchable(self):
        spec = JobSpec(
            kind="library", input="lib", target="sailboat", size=64
        )
        assert step2_fingerprint(spec) is None

    def test_backend_default_feeds_the_key(self):
        spec = JobSpec(input="a", target="b", size=64, tile_size=16)
        assert step2_fingerprint(spec, "numpy") == step2_fingerprint(spec)
        assert step2_fingerprint(spec, "auto") != step2_fingerprint(spec)


class TestCoordinator:
    def test_solo_job_launches_without_waiting(self):
        coordinator = Step2BatchCoordinator(window_s=30.0)  # would hang if waited
        coordinator.announce("fp")
        started = time.perf_counter()
        result, size = coordinator.compute(
            "fp", BatchJob(_stack(0), _stack(1)), metric="sad", backend="numpy"
        )
        assert time.perf_counter() - started < 5.0
        assert size == 1
        assert result.shape == (S, S)

    def test_concurrent_peers_share_one_launch(self):
        coordinator = Step2BatchCoordinator(window_s=5.0, max_batch=8)
        fingerprint = "fp"
        for _ in range(3):
            coordinator.announce(fingerprint)
        results: dict[int, tuple] = {}

        def worker(index: int) -> None:
            results[index] = coordinator.compute(
                fingerprint,
                BatchJob(_stack(index), _stack(100)),
                metric="sad",
                backend="numpy",
            )

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(results) == 3
        sizes = {size for _, size in results.values()}
        assert sizes == {3}
        from repro.cost import error_matrix

        for index, (matrix, _) in results.items():
            np.testing.assert_array_equal(
                matrix, error_matrix(_stack(index), _stack(100), "sad")
            )

    def test_full_batch_seals_before_window(self):
        coordinator = Step2BatchCoordinator(window_s=60.0, max_batch=2)
        for _ in range(5):
            coordinator.announce("fp")  # more announced than max_batch
        done = []

        def worker(index: int) -> None:
            done.append(
                coordinator.compute(
                    "fp",
                    BatchJob(_stack(index), _stack(7)),
                    metric="sad",
                    backend="numpy",
                )[1]
            )

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert time.perf_counter() - started < 30  # sealed at max_batch
        assert done == [2, 2]

    def test_builder_error_reaches_every_member(self):
        coordinator = Step2BatchCoordinator(window_s=5.0)
        coordinator.announce("fp")
        coordinator.announce("fp")
        errors = []

        def worker(job: BatchJob) -> None:
            try:
                coordinator.compute("fp", job, metric="sad", backend="numpy")
            except Exception as exc:  # noqa: BLE001 - asserting propagation
                errors.append(type(exc).__name__)

        bad = BatchJob(_stack(0), np.zeros((4, 8, 8), dtype=np.uint8))
        threads = [
            threading.Thread(target=worker, args=(job,))
            for job in (BatchJob(_stack(0), _stack(1)), bad)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(errors) == 2  # the grid-mismatch fails the whole group

    def test_depart_unblocks_the_window(self):
        """A withdrawn announcement stops the leader waiting for it."""
        coordinator = Step2BatchCoordinator(window_s=20.0)
        coordinator.announce("fp")
        coordinator.announce("fp")
        out = []

        def leader() -> None:
            out.append(
                coordinator.compute(
                    "fp",
                    BatchJob(_stack(0), _stack(1)),
                    metric="sad",
                    backend="numpy",
                )[1]
            )

        thread = threading.Thread(target=leader)
        started = time.perf_counter()
        thread.start()
        time.sleep(0.2)
        coordinator.depart("fp")  # the peer will never arrive
        thread.join(timeout=30)
        assert out == [1]
        assert time.perf_counter() - started < 15

    def test_metrics_instruments_recorded(self):
        metrics = MetricsRegistry()
        coordinator = Step2BatchCoordinator(window_s=1.0, metrics=metrics)
        coordinator.announce("fp")
        coordinator.compute(
            "fp", BatchJob(_stack(0), _stack(1)), metric="sad", backend="numpy"
        )
        assert metrics.counter("step2_batches_total").value == 1
        assert metrics.counter("step2_batched_jobs_total").value == 1
        assert metrics.histogram("step2_batch_size").count == 1
        assert metrics.histogram("step2_batch_window_wait_seconds").count == 1
        assert metrics.histogram("step2_batch_launch_seconds").count == 1


def _run_pool(batch_window: float, *, shortlist: int = 0, jobs: int = 4):
    specs = [
        JobSpec(
            input="portrait",
            target="sailboat",
            size=64,
            tile_size=16,
            shortlist_top_k=shortlist,
            seed=5,
            name=f"job-{i}",
        )
        for i in range(jobs)
    ]
    metrics = MetricsRegistry()
    with WorkerPool(
        workers=jobs,
        metrics=metrics,
        batch_window=batch_window,
        batch_max=8,
    ) as pool:
        records = pool.run(specs)
    for record in records:
        assert record.state is JobState.DONE, record.error
    return records, metrics


class TestPoolDifferential:
    @pytest.mark.parametrize("shortlist", (0, 8))
    def test_batched_pool_is_bit_identical_to_solo(self, shortlist):
        solo, _ = _run_pool(0.0, shortlist=shortlist)
        batched, metrics = _run_pool(1.0, shortlist=shortlist)
        for a, b in zip(solo, batched):
            assert b.result.total_error == a.result.total_error
            np.testing.assert_array_equal(
                b.result.permutation, a.result.permutation
            )
            assert _checksum(b.result.image) == _checksum(a.result.image)
        counters = metrics.as_dict()["counters"]
        assert counters["step2_batched_jobs_total"] == 4
        assert counters["step2_batches_total"] < 4  # launches were shared

    def test_batch_meta_in_summary_and_counters(self):
        records, metrics = _run_pool(1.0)
        for record in records:
            batch = record.summary().get("batch")
            assert batch is not None
            assert batch["size"] >= 1
        counters = metrics.as_dict()["counters"]
        assert counters["batch_meta_jobs_total"] == 4

    def test_unbatched_pool_has_no_batch_meta(self):
        records, metrics = _run_pool(0.0)
        for record in records:
            assert "batch" not in record.summary()
        assert metrics.counter("step2_batches_total").value == 0
