"""Property test: random submit/cancel/complete/retry interleavings.

Hypothesis drives a scripted runner through the gateway — per job it
draws an attempt script (each attempt succeeds or fails), a number of
progress emissions per attempt, and optionally a point in the stream at
which the driver requests cancellation.  Whatever the interleaving, every
per-job stream must satisfy the gateway contract:

* events are per-job ordered (contiguous ``seq`` from 0),
* the first event is ``admitted``,
* exactly one terminal event, and it is the last event,
* state transitions are legal for the job state machine,
* no events after termination (the stream ends at the terminal event and
  the record's final state matches it).
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.service import JobSpec, JobState, MosaicGateway, WorkerPool

MAX_RETRIES = 2

#: new-state -> states it may legally follow on a stream.  ``None`` is
#: the implicit initial state (job admitted, not yet run).
LEGAL_PREDECESSORS = {
    "RUNNING": {None, "PENDING"},
    "PENDING": {"RUNNING"},
    "DONE": {"RUNNING"},
    "FAILED": {"RUNNING"},
    "CANCELLED": {None, "RUNNING", "PENDING"},
}

job_script = st.fixed_dictionaries(
    {
        # Outcome per attempt; the pool retries failures up to
        # MAX_RETRIES times, so at most MAX_RETRIES + 1 entries are used.
        "attempts": st.lists(
            st.sampled_from(["ok", "fail"]), min_size=1, max_size=MAX_RETRIES + 1
        ),
        "sweeps": st.integers(min_value=0, max_value=3),
        # Stream index at which the driver requests cancellation (None:
        # never).  Index 0 is the ``admitted`` event, so small values
        # cancel jobs that are still queued.
        "cancel_at": st.one_of(st.none(), st.integers(min_value=0, max_value=6)),
    }
)


class ScriptedRunner:
    accepts_context = True

    def __init__(self, scripts: dict[str, dict]) -> None:
        self.scripts = scripts
        self._attempts: dict[str, int] = {}
        self._lock = threading.Lock()

    def __call__(self, spec: JobSpec, ctx=None) -> str:
        script = self.scripts[spec.name]
        with self._lock:
            index = self._attempts.get(spec.name, 0)
            self._attempts[spec.name] = index + 1
        outcome = script["attempts"][min(index, len(script["attempts"]) - 1)]
        for sweep in range(script["sweeps"]):
            if ctx is not None:
                ctx.check_cancelled()
                ctx.emit("sweep", {"sweep": sweep, "swaps": 0, "total": 0})
            time.sleep(0.0005)  # window for cancellation to interleave
        if outcome == "fail":
            raise RuntimeError(f"scripted failure on attempt {index}")
        return spec.name


async def _consume(gateway: MosaicGateway, stream, cancel_at):
    events = []
    async for event in stream:
        if cancel_at is not None and len(events) == cancel_at:
            await gateway.cancel(stream.job_id)
        events.append(event)
    return events


def _assert_stream_contract(events, record) -> None:
    assert events, "every admitted job yields at least admitted + terminal"
    assert [e.seq for e in events] == list(range(len(events)))
    assert events[0].kind == "admitted"
    terminal_flags = [e.terminal for e in events]
    assert terminal_flags.count(True) == 1
    assert events[-1].terminal, "no events after the terminal event"
    assert events[-1].kind == "state"
    assert events[-1].state == record.state.value
    previous = None
    for event in events:
        if event.kind != "state":
            continue
        assert previous in LEGAL_PREDECESSORS[event.state], (
            f"illegal transition {previous} -> {event.state}"
        )
        previous = event.state
    # Retry notices pair one-to-one with RUNNING -> PENDING demotions.
    retries = sum(1 for e in events if e.kind == "retry")
    pendings = sum(1 for e in events if e.state == "PENDING")
    assert retries == pendings


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scripts=st.lists(job_script, min_size=1, max_size=4), workers=st.integers(1, 2))
def test_random_interleavings_preserve_stream_contract(scripts, workers):
    async def main():
        named = {f"job{i}": script for i, script in enumerate(scripts)}
        runner = ScriptedRunner(named)
        pool = WorkerPool(
            workers=workers,
            runner=runner,
            max_retries=MAX_RETRIES,
            backoff=0.001,
            seed=7,
        )
        try:
            async with MosaicGateway(pool, max_pending=len(named)) as gateway:
                streams = [
                    await gateway.submit(
                        JobSpec(input="x", target="y", name=name)
                    )
                    for name in named
                ]
                collected = await asyncio.gather(
                    *(
                        _consume(gateway, stream, named[stream.record.spec.name]["cancel_at"])
                        for stream in streams
                    )
                )
            assert gateway.pending == 0
        finally:
            pool.shutdown()
        for stream, events in zip(streams, collected):
            _assert_stream_contract(events, stream.record)
            assert stream.record.state in (
                JobState.DONE, JobState.FAILED, JobState.CANCELLED,
            )

    asyncio.run(main())
