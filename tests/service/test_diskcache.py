"""Tests for the shared disk-first artifact store."""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.service.diskcache import (
    DiskCacheStore,
    decode_payload,
    encode_payload,
)

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def _child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestPayloadCodec:
    def test_array_round_trip(self, rng):
        arr = rng.integers(0, 256, size=(7, 5)).astype(np.uint8)
        data, layout = encode_payload(arr)
        out = decode_payload(data, layout)
        assert out.dtype == arr.dtype and out.shape == arr.shape
        assert out.tobytes() == arr.tobytes()

    def test_tuple_with_none_round_trip(self, rng):
        matrix = rng.random((4, 4))
        data, layout = encode_payload((matrix, None))
        out = decode_payload(data, layout)
        assert isinstance(out, tuple) and len(out) == 2
        assert np.array_equal(out[0], matrix) and out[1] is None

    def test_list_round_trip(self):
        data, layout = encode_payload([np.arange(3), np.ones(2)])
        out = decode_payload(data, layout)
        assert isinstance(out, list) and len(out) == 2

    def test_pickle_fallback_for_arbitrary_payloads(self):
        payload = {"nested": [1, 2, 3], "name": "x"}
        data, layout = encode_payload(payload)
        assert layout["kind"] == "pickle"
        assert decode_payload(data, layout) == payload

    def test_unknown_layout_rejected(self):
        data, _ = encode_payload(np.arange(3))
        with pytest.raises(ValueError, match="layout"):
            decode_payload(data, {"kind": "wat"})


class TestStoreBasics:
    def test_miss_then_hit(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        assert store.get("tiles/a/t8") is None
        store.put("tiles/a/t8", np.arange(16))
        assert np.array_equal(store.get("tiles/a/t8"), np.arange(16))
        stats = store.stats
        assert stats.hits == 1 and stats.misses == 1 and stats.writes == 1

    def test_sharded_content_addressed_layout(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.put("matrix/fpa/fpb/t8/sad", (np.ones((2, 2)), None))
        digest = DiskCacheStore._digest("matrix/fpa/fpb/t8/sad")
        shard = tmp_path / "store" / "matrix" / digest[:2]
        assert (shard / f"{digest}.npz").exists()
        sidecar = json.loads((shard / f"{digest}.json").read_text())
        assert sidecar["key"] == "matrix/fpa/fpb/t8/sad"
        assert sidecar["nbytes"] == (shard / f"{digest}.npz").stat().st_size

    def test_weird_key_prefix_lands_in_misc(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.put("../../etc/passwd", np.zeros(2))
        assert (tmp_path / "store" / "misc").is_dir()
        assert np.array_equal(store.get("../../etc/passwd"), np.zeros(2))

    def test_contains_no_stats(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.put("tiles/a/t8", np.zeros(4))
        assert store.contains("tiles/a/t8")
        assert not store.contains("tiles/b/t8")
        stats = store.stats
        assert stats.hits == 0 and stats.misses == 0

    def test_get_or_compute_single_process(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return np.full(4, 7)

        first = store.get_or_compute("tiles/x/t4", compute)
        second = store.get_or_compute("tiles/x/t4", compute)
        assert np.array_equal(first, second) and len(calls) == 1

    def test_clear(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.put("tiles/a/t8", np.zeros(4))
        store.put("tiles/b/t8", np.zeros(4))
        store.clear()
        assert len(store) == 0
        assert store.get("tiles/a/t8") is None

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            DiskCacheStore(tmp_path, max_bytes=0)

    def test_persistence_across_instances(self, tmp_path):
        DiskCacheStore(tmp_path).put("tiles/a/t8", np.arange(9))
        fresh = DiskCacheStore(tmp_path)
        assert np.array_equal(fresh.get("tiles/a/t8"), np.arange(9))

    def test_pickling_preserves_configuration_only(self, tmp_path):
        store = DiskCacheStore(tmp_path, max_bytes=12345, lock_timeout=1.5)
        store.put("tiles/a/t8", np.zeros(3))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone.max_bytes == 12345 and clone.lock_timeout == 1.5
        assert clone.metrics is None and clone.stats.hits == 0
        assert np.array_equal(clone.get("tiles/a/t8"), np.zeros(3))


class TestEviction:
    def test_budget_enforced_lru(self, tmp_path):
        store = DiskCacheStore(tmp_path, max_bytes=5000)
        for i in range(6):
            store.put(f"tiles/k{i}/t1", np.zeros(256, dtype=np.float64))
            time.sleep(0.01)  # distinct mtimes for deterministic LRU order
        stats = store.stats
        assert stats.current_bytes <= 5000
        assert stats.evictions >= 1
        assert not store.contains("tiles/k0/t1")  # oldest evicted first
        assert store.contains("tiles/k5/t1")

    def test_read_refreshes_recency(self, tmp_path):
        store = DiskCacheStore(tmp_path, max_bytes=5200)
        store.put("tiles/a/t1", np.zeros(256))
        time.sleep(0.01)
        store.put("tiles/b/t1", np.zeros(256))
        time.sleep(0.01)
        assert store.get("tiles/a/t1") is not None  # touch: a newer than b
        time.sleep(0.01)
        store.put("tiles/c/t1", np.zeros(256))  # evicts one entry
        assert store.contains("tiles/a/t1")
        assert not store.contains("tiles/b/t1")

    def test_oversized_entry_admitted_alone(self, tmp_path):
        store = DiskCacheStore(tmp_path, max_bytes=1000)
        store.put("tiles/big/t1", np.zeros(4096))
        assert store.contains("tiles/big/t1")

    def test_index_rebuilds_after_deletion(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.put("tiles/a/t8", np.zeros(64))
        os.remove(tmp_path / "index.json")
        # A later write under the lock rebuilds accounting by scanning.
        store.put("tiles/b/t8", np.zeros(64))
        assert store.stats.entries == 2


class TestCrashWindow:
    """A writer killed mid-write must never corrupt the visible store."""

    def test_simulated_torn_write_is_invisible(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.put("tiles/a/t8", np.arange(32))
        digest = DiskCacheStore._digest("tiles/a/t8")
        shard = tmp_path / "store" / "tiles" / digest[:2]
        # A crashed writer leaves a half-written temp next to the entry.
        (shard / f"{digest}.npz.tmp.9999.1").write_bytes(b"\x00" * 10)
        assert np.array_equal(store.get("tiles/a/t8"), np.arange(32))
        assert store.stats.corruptions == 0

    def test_sigkill_mid_write_leaves_loadable_store(self, tmp_path):
        """SIGKILL a child that is writing as fast as it can; the store
        must still load: every visible entry passes its checksum and a
        fresh reader sees only complete values or clean misses."""
        script = f"""
import numpy as np, itertools
from repro.service.diskcache import DiskCacheStore
store = DiskCacheStore({os.fspath(tmp_path)!r})
payload = np.arange(262144, dtype=np.float64)  # ~2 MiB per entry
for i in itertools.count():
    store.put(f"tiles/crash{{i % 8}}/t1", payload)
"""
        proc = subprocess.Popen(
            [sys.executable, "-c", script], env=_child_env()
        )
        try:
            store_dir = tmp_path / "store"
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if store_dir.exists() and any(store_dir.rglob("*.npz")):
                    break
                time.sleep(0.02)
            time.sleep(0.15)  # let it get mid-write
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        expected = np.arange(262144, dtype=np.float64)
        survivor = DiskCacheStore(tmp_path)
        seen_value = False
        for i in range(8):
            value = survivor.get(f"tiles/crash{i}/t1")
            if value is not None:
                assert np.array_equal(value, expected)  # never torn
                seen_value = True
        assert seen_value  # the child did publish at least one entry
        assert survivor.stats.corruptions == 0
        # get_or_compute still works on every key, recomputing any gaps.
        out = survivor.get_or_compute("tiles/crash0/t1", lambda: expected)
        assert np.array_equal(out, expected)
