"""Tests for the thread-safe job priority queue."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import JobError
from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.service.queue import JobQueue


def record(name: str, priority: int = 0) -> JobRecord:
    spec = JobSpec(input="portrait", target="sailboat", name=name, priority=priority)
    return JobRecord(spec=spec, job_id=f"job-{name}")


class TestOrdering:
    def test_higher_priority_pops_first(self):
        q = JobQueue()
        q.push(record("low", priority=0))
        q.push(record("high", priority=5))
        q.push(record("mid", priority=2))
        names = [q.pop(timeout=0.1).spec.name for _ in range(3)]
        assert names == ["high", "mid", "low"]

    def test_fifo_within_priority(self):
        q = JobQueue()
        for name in ("a", "b", "c"):
            q.push(record(name, priority=1))
        names = [q.pop(timeout=0.1).spec.name for _ in range(3)]
        assert names == ["a", "b", "c"]


class TestLifecycle:
    def test_pop_timeout_returns_none(self):
        assert JobQueue().pop(timeout=0.01) is None

    def test_len_counts_pending(self):
        q = JobQueue()
        q.push(record("a"))
        q.push(record("b"))
        assert len(q) == 2
        q.pop(timeout=0.1)
        assert len(q) == 1

    def test_duplicate_id_rejected(self):
        q = JobQueue()
        q.push(record("a"))
        with pytest.raises(JobError, match="duplicate"):
            q.push(record("a"))

    def test_push_after_close_rejected(self):
        q = JobQueue()
        q.close()
        with pytest.raises(JobError, match="closed"):
            q.push(record("a"))

    def test_close_drain_delivers_remaining(self):
        q = JobQueue()
        q.push(record("a"))
        q.close(drain=True)
        assert q.pop(timeout=0.1).spec.name == "a"
        assert q.pop(timeout=0.1) is None  # closed and empty

    def test_close_no_drain_cancels_remaining(self):
        q = JobQueue()
        a, b = record("a"), record("b")
        q.push(a)
        q.push(b)
        assert q.close(drain=False) == 2
        assert a.state is JobState.CANCELLED
        assert b.state is JobState.CANCELLED
        assert q.pop(timeout=0.05) is None

    def test_close_wakes_blocked_consumer(self):
        q = JobQueue()
        results = []
        consumer = threading.Thread(target=lambda: results.append(q.pop()))
        consumer.start()
        q.close()
        consumer.join(timeout=2.0)
        assert not consumer.is_alive()
        assert results == [None]


class TestCancel:
    def test_cancel_pending(self):
        q = JobQueue()
        a = record("a")
        q.push(a)
        assert q.cancel("job-a") is True
        assert a.state is JobState.CANCELLED
        assert q.pop(timeout=0.05) is None  # cancelled entries are skipped

    def test_cancel_unknown_returns_false(self):
        assert JobQueue().cancel("job-nope") is False

    def test_cancelled_entry_does_not_block_others(self):
        q = JobQueue()
        q.push(record("a", priority=9))
        q.push(record("b"))
        q.cancel("job-a")
        assert q.pop(timeout=0.1).spec.name == "b"


class TestCancelPopRace:
    def test_concurrent_cancel_and_pop_never_conflict(self):
        """Cancellation transitions under the queue lock, so a record is
        either delivered to a consumer or CANCELLED — never both, and
        never an illegal PENDING->RUNNING-after-CANCELLED transition.
        Regression test for a race where cancel() transitioned outside
        the lock while pop() handed the same record to a worker."""
        for round_no in range(20):
            q = JobQueue()
            records = [record(f"r{round_no}-{i}") for i in range(8)]
            for r in records:
                q.push(r)
            popped: list[JobRecord] = []
            cancelled: list[str] = []
            errors: list[BaseException] = []
            start = threading.Barrier(3)

            def consumer() -> None:
                try:
                    start.wait()
                    while True:
                        item = q.pop(timeout=0.2)
                        if item is None:
                            return
                        item.transition(JobState.RUNNING)
                        popped.append(item)
                except BaseException as exc:  # noqa: BLE001 - recorded for assert
                    errors.append(exc)

            def canceller() -> None:
                try:
                    start.wait()
                    for r in records:
                        if q.cancel(r.job_id):
                            cancelled.append(r.job_id)
                except BaseException as exc:  # noqa: BLE001 - recorded for assert
                    errors.append(exc)

            threads = [
                threading.Thread(target=consumer),
                threading.Thread(target=canceller),
            ]
            for t in threads:
                t.start()
            start.wait()
            for t in threads:
                t.join(timeout=10.0)
            assert errors == []
            # Every record went exactly one way.
            popped_ids = {r.job_id for r in popped}
            assert popped_ids.isdisjoint(cancelled)
            assert len(popped_ids) + len(cancelled) == len(records)
            for r in records:
                expected = (
                    JobState.CANCELLED
                    if r.job_id in cancelled
                    else JobState.RUNNING
                )
                assert r.state is expected


class TestConcurrency:
    def test_many_producers_one_consumer(self):
        q = JobQueue()
        total = 40

        def produce(start: int) -> None:
            for i in range(start, start + 10):
                q.push(record(f"p{i}"))

        threads = [threading.Thread(target=produce, args=(i * 10,)) for i in range(4)]
        for t in threads:
            t.start()
        seen = {q.pop(timeout=1.0).spec.name for _ in range(total)}
        for t in threads:
            t.join()
        assert len(seen) == total
