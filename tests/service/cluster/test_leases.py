"""Owner-side compute-lease arbitration (cross-node single-flight)."""

from __future__ import annotations

import time

import pytest

from repro.service.cluster import CacheLeaseTable


class TestAcquire:
    def test_ready_short_circuits(self):
        table = CacheLeaseTable()
        assert table.acquire("k", "n1", ready=True) == {"state": "ready"}
        assert table.granted == 0

    def test_ready_clears_stale_lease(self):
        table = CacheLeaseTable()
        table.acquire("k", "n1", ready=False)
        assert table.active() == 1
        # artifact landed while n1 computed; a later acquire sees ready
        # and the lease is dropped, not left to expire
        table.acquire("k", "n2", ready=True)
        assert table.active() == 0

    def test_first_acquire_granted(self):
        table = CacheLeaseTable()
        assert table.acquire("k", "n1", ready=False) == {"state": "granted"}
        assert table.granted == 1
        assert table.active() == 1

    def test_second_requester_waits(self):
        table = CacheLeaseTable(retry_after=0.25)
        table.acquire("k", "n1", ready=False)
        decision = table.acquire("k", "n2", ready=False)
        assert decision == {"state": "wait", "retry_after": 0.25}

    def test_idempotent_regrant_to_same_holder(self):
        table = CacheLeaseTable()
        table.acquire("k", "n1", ready=False)
        # the grant response was lost; the same node retries
        assert table.acquire("k", "n1", ready=False) == {"state": "granted"}
        assert table.reclaimed == 0

    def test_distinct_keys_independent(self):
        table = CacheLeaseTable()
        assert table.acquire("k1", "n1", ready=False)["state"] == "granted"
        assert table.acquire("k2", "n2", ready=False)["state"] == "granted"
        assert table.active() == 2


class TestTtlReclaim:
    def test_expired_lease_reclaimed_by_other_node(self):
        table = CacheLeaseTable(ttl=0.05)
        table.acquire("k", "n1", ready=False)
        time.sleep(0.08)  # n1 "died" mid-compute
        assert table.acquire("k", "n2", ready=False) == {"state": "granted"}
        assert table.reclaimed == 1

    def test_unexpired_lease_not_reclaimed(self):
        table = CacheLeaseTable(ttl=30.0)
        table.acquire("k", "n1", ready=False)
        assert table.acquire("k", "n2", ready=False)["state"] == "wait"
        assert table.reclaimed == 0

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            CacheLeaseTable(ttl=0)


class TestRelease:
    def test_holder_releases(self):
        table = CacheLeaseTable()
        table.acquire("k", "n1", ready=False)
        assert table.release("k", "n1") is True
        assert table.active() == 0
        # key is free again
        assert table.acquire("k", "n2", ready=False)["state"] == "granted"

    def test_non_holder_release_refused(self):
        table = CacheLeaseTable()
        table.acquire("k", "n1", ready=False)
        assert table.release("k", "n2") is False
        assert table.active() == 1

    def test_release_unknown_key(self):
        assert CacheLeaseTable().release("nope", "n1") is False
