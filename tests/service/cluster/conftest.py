"""Shared fixtures for the cluster tier tests.

The central piece is :class:`MiniCluster` — a coordinator plus N worker
nodes composed in ONE asyncio loop (no subprocesses), modeled on the
``ServedFront`` harness from the HTTP tests.  Nodes carry real worker
pools and (optionally) real disk-backed cluster cache stores, so the
tests exercise the same code paths as ``photomosaic serve-node`` minus
the process boundary.  ``crash_node`` simulates a SIGKILL: heartbeats
stop and the listener vanishes without any drain or deregistration.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time

import pytest

from repro.service import (
    ArtifactCache,
    CacheStack,
    DiskCacheStore,
    MosaicGateway,
    WorkerPool,
)
from repro.service.cluster import (
    CacheLeaseTable,
    ClusterCacheStore,
    ClusterCoordinator,
    ClusterNodeApp,
    CoordinatorConfig,
    NodeFront,
    PeerDirectory,
)
from repro.service.http import HttpFrontConfig
from repro.service.workers import MosaicJobRunner

TOKEN = "cluster-test-token"


def run_async(coro):
    return asyncio.run(coro)


def spec_dict(name: str = "j", **overrides) -> dict:
    payload = {
        "name": name,
        "input": "portrait",
        "target": "sailboat",
        "size": 32,
        "tile_size": 8,
        "seed": 5,
    }
    payload.update(overrides)
    return payload


class SweepRunner:
    """Context-aware runner emitting slow sweep events (crash window)."""

    accepts_context = True

    def __init__(self, sweeps: int = 5, dwell: float = 0.001) -> None:
        self.sweeps = sweeps
        self.dwell = dwell
        self.first_sweep = threading.Event()

    def __call__(self, job_spec, ctx=None) -> str:
        for index in range(self.sweeps):
            if ctx is not None:
                ctx.check_cancelled()
                ctx.emit("sweep", {"sweep": index})
            self.first_sweep.set()
            time.sleep(self.dwell)
        return job_spec.name


class ClusterNode:
    """One worker node: pool + gateway + NodeFront + heartbeat app."""

    def __init__(self, node_id: str, *, runner=None, cache_root=None, workers=2):
        self.node_id = node_id
        self.directory = PeerDirectory(node_id)
        self.cluster_cache = None
        if cache_root is not None:
            store = DiskCacheStore(str(cache_root), max_bytes=1 << 30)
            self.cluster_cache = ClusterCacheStore(
                store, self.directory, token=TOKEN
            )
        cache = CacheStack(memory=ArtifactCache(), disk=self.cluster_cache)
        self.runner = runner if runner is not None else MosaicJobRunner(cache=cache)
        self.pool = WorkerPool(
            workers=workers, runner=self.runner, cache=cache, seed=0
        )
        self.gateway = MosaicGateway(self.pool, max_pending=8)
        self.front = NodeFront(
            self.gateway,
            node_id=node_id,
            directory=self.directory,
            cluster_cache=self.cluster_cache,
            leases=CacheLeaseTable(),
            config=HttpFrontConfig(
                port=0, auth_token=TOKEN, max_body_bytes=64 << 20
            ),
        )
        self.app: ClusterNodeApp | None = None
        self.crashed = False

    async def start(self, coordinator_port: int, heartbeat_interval=0.1) -> None:
        await self.front.start()
        self.app = ClusterNodeApp(
            self.front,
            coordinator_host="127.0.0.1",
            coordinator_port=coordinator_port,
            token=TOKEN,
            heartbeat_interval=heartbeat_interval,
        )
        await self.app.start()

    async def crash(self) -> None:
        """SIGKILL shape: no drain, no deregister, listener gone."""
        self.crashed = True
        if self.app is not None and self.app._task is not None:
            # Flag first: wait_for can swallow a cancel that lands in
            # the same tick a heartbeat RPC completes (bpo-37658); the
            # flag guarantees the loop exits and this await returns.
            self.app._stopping = True
            self.app._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self.app._task
            self.app._task = None
        self.front._server.close()
        # An accept already queued on the loop can materialise a NEW
        # connection task *after* close() — kill those too, repeatedly,
        # until the connection set stays empty (a real SIGKILL leaves no
        # socket behind to keep streaming the job to the coordinator).
        for _ in range(50):
            for task in list(self.front._conn_tasks):
                task.cancel()
            await asyncio.sleep(0.01)
            if not self.front._conn_tasks:
                break
        # the "dead" box must also stop computing: a SIGKILLed process
        # cannot keep running worker threads that feed the event log
        for record in self.pool.records():
            self.pool.cancel(record.job_id)

    async def stop(self) -> None:
        if self.crashed:
            # the box is "dead": abort in-flight work at the next
            # cooperation point and don't wait on stragglers (daemons)
            for record in self.pool.records():
                self.pool.cancel(record.job_id)
            self.pool.shutdown(drain=False, timeout=2.0)
            return
        if self.app is not None:
            await self.app.stop()
        await self.gateway.aclose(drain=True)
        await self.front.broker.drain()
        await self.front.aclose()
        self.pool.shutdown()


class MiniCluster:
    """Async context manager running a coordinator and N nodes."""

    def __init__(
        self,
        nodes: int = 2,
        *,
        runner_factory=None,
        cache_root=None,
        heartbeat_deadline: float = 0.8,
        workers: int = 2,
        **config_overrides,
    ) -> None:
        self.coordinator = ClusterCoordinator(
            config=CoordinatorConfig(
                port=0,
                auth_token=TOKEN,
                heartbeat_deadline=heartbeat_deadline,
                pump_retry=0.05,
                retry_after=0.1,
                **config_overrides,
            )
        )
        self._node_count = nodes
        self._runner_factory = runner_factory
        self._cache_root = cache_root
        self._workers = workers
        self.nodes: list[ClusterNode] = []

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.coordinator.port}"

    async def wait_nodes_up(self, count: int, timeout: float = 5.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self.coordinator.membership.live()) >= count:
                return
            await asyncio.sleep(0.02)
        raise AssertionError(
            f"only {len(self.coordinator.membership.live())}/{count} nodes up"
        )

    async def __aenter__(self) -> "MiniCluster":
        await self.coordinator.start()
        for index in range(self._node_count):
            node_id = f"n{index}"
            runner = (
                self._runner_factory(index) if self._runner_factory else None
            )
            root = (
                self._cache_root / node_id if self._cache_root is not None else None
            )
            node = ClusterNode(
                node_id, runner=runner, cache_root=root, workers=self._workers
            )
            await node.start(self.coordinator.port)
            self.nodes.append(node)
        await self.wait_nodes_up(self._node_count)
        return self

    async def __aexit__(self, *exc_info) -> None:
        for node in self.nodes:
            await node.stop()
        await self.coordinator.aclose()

    async def call(self, fn, *args):
        """Run a blocking client call off-loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, fn, *args)


@pytest.fixture
def token() -> str:
    return TOKEN
