"""Consistent-hashed cache tier: remote hits, replication, single-flight.

Runs two real worker nodes in one asyncio loop (``MiniCluster`` with
disk-backed cluster caches) and drives each node's
:class:`ClusterCacheStore` directly — blocking calls run off-loop, the
cache RPC travels over the nodes' real internal routes.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.service.cluster import ClusterCacheStore, NodeRpcClient, PeerDirectory
from repro.service import DiskCacheStore

from .conftest import MiniCluster, run_async

#: Keys contain slashes on purpose — the RPC carries them URL-encoded.
KEYS = [f"step2/sad/fp-{i:03d}" for i in range(64)]


def owned_key(store: ClusterCacheStore, owner_id: str) -> str:
    for key in KEYS:
        if store.directory.owner(key) == owner_id:
            return key
    raise AssertionError(f"no test key hashes to {owner_id}")


def value_for(key: str) -> np.ndarray:
    return np.full((16, 16), hash(key) % 251, dtype=np.int32)


class TestRemoteReads:
    def test_remote_hit_replicates_locally(self, tmp_path):
        async def scenario():
            async with MiniCluster(nodes=2, cache_root=tmp_path) as cluster:
                a, b = cluster.nodes[0], cluster.nodes[1]
                key = owned_key(a.cluster_cache, "n1")
                expected = value_for(key)
                b.cluster_cache.local.put(key, expected)

                got = await cluster.call(a.cluster_cache.get, key)
                np.testing.assert_array_equal(got, expected)
                # read-through replication: the next read never leaves the box
                assert a.cluster_cache.local.contains(key)
                counts = a.cluster_cache.counts()
                assert counts["remote_hits"] == 1
                assert counts["replications_in"] == 1

                again = await cluster.call(a.cluster_cache.get, key)
                np.testing.assert_array_equal(again, expected)
                assert a.cluster_cache.counts()["remote_hits"] == 1

        run_async(scenario())

    def test_remote_miss_returns_default(self, tmp_path):
        async def scenario():
            async with MiniCluster(nodes=2, cache_root=tmp_path) as cluster:
                a = cluster.nodes[0]
                key = owned_key(a.cluster_cache, "n1")
                got = await cluster.call(
                    lambda: a.cluster_cache.get(key, "fallback")
                )
                assert got == "fallback"
                assert a.cluster_cache.counts()["remote_misses"] == 1

        run_async(scenario())

    def test_put_replicates_to_owner(self, tmp_path):
        async def scenario():
            async with MiniCluster(nodes=2, cache_root=tmp_path) as cluster:
                a, b = cluster.nodes[0], cluster.nodes[1]
                key = owned_key(a.cluster_cache, "n1")
                expected = value_for(key)
                await cluster.call(a.cluster_cache.put, key, expected)
                assert b.cluster_cache.local.contains(key)
                np.testing.assert_array_equal(
                    b.cluster_cache.local.get(key), expected
                )
                assert a.cluster_cache.counts()["replications_out"] == 1

        run_async(scenario())


class TestGetOrCompute:
    def test_owner_ready_skips_compute(self, tmp_path):
        async def scenario():
            async with MiniCluster(nodes=2, cache_root=tmp_path) as cluster:
                a, b = cluster.nodes[0], cluster.nodes[1]
                key = owned_key(a.cluster_cache, "n1")
                expected = value_for(key)
                b.cluster_cache.local.put(key, expected)
                calls = []

                def compute():
                    calls.append(1)
                    return value_for(key)

                got = await cluster.call(
                    a.cluster_cache.get_or_compute, key, compute
                )
                np.testing.assert_array_equal(got, expected)
                assert calls == []

        run_async(scenario())

    def test_granted_computes_then_replicates_and_releases(self, tmp_path):
        async def scenario():
            async with MiniCluster(nodes=2, cache_root=tmp_path) as cluster:
                a, b = cluster.nodes[0], cluster.nodes[1]
                key = owned_key(a.cluster_cache, "n1")
                expected = value_for(key)
                calls = []

                def compute():
                    calls.append(1)
                    return expected

                got = await cluster.call(
                    a.cluster_cache.get_or_compute, key, compute
                )
                np.testing.assert_array_equal(got, expected)
                assert calls == [1]
                # the artifact replicated to its owner and the lease is gone
                assert b.cluster_cache.local.contains(key)
                assert b.front.leases.active() == 0
                counts = a.cluster_cache.counts()
                assert counts["lease_grants"] == 1
                assert counts["replications_out"] == 1
                # a sibling node now gets a ready answer, zero compute
                got_b = await cluster.call(
                    b.cluster_cache.get_or_compute,
                    key,
                    lambda: pytest.fail("owner must not recompute"),
                )
                np.testing.assert_array_equal(got_b, expected)

        run_async(scenario())

    def test_self_owned_key_stays_local(self, tmp_path):
        async def scenario():
            async with MiniCluster(nodes=2, cache_root=tmp_path) as cluster:
                a = cluster.nodes[0]
                key = owned_key(a.cluster_cache, "n0")
                calls = []

                def compute():
                    calls.append(1)
                    return value_for(key)

                await cluster.call(a.cluster_cache.get_or_compute, key, compute)
                assert calls == [1]
                counts = a.cluster_cache.counts()
                assert counts["lease_grants"] == 0
                assert counts["replications_out"] == 0

        run_async(scenario())

    def test_wait_polls_until_value_lands_locally(self, tmp_path):
        async def scenario():
            async with MiniCluster(nodes=2, cache_root=tmp_path) as cluster:
                a, b = cluster.nodes[0], cluster.nodes[1]
                key = owned_key(a.cluster_cache, "n1")
                expected = value_for(key)
                # another node holds the owner's lease for this key
                b.front.leases.acquire(key, "n9", ready=False)

                def land_value(_delay):
                    # stand-in for "the grantee finished and replicated":
                    # the value appears in our local store mid-wait
                    a.cluster_cache.local.put(key, expected)

                a.cluster_cache._sleep = land_value
                got = await cluster.call(
                    a.cluster_cache.get_or_compute,
                    key,
                    lambda: pytest.fail("waiter must not compute"),
                )
                np.testing.assert_array_equal(got, expected)
                assert a.cluster_cache.counts()["lease_waits"] >= 1

        run_async(scenario())


class TestOwnerFailure:
    def test_dead_owner_degrades_to_local_compute(self, tmp_path):
        local = DiskCacheStore(str(tmp_path / "solo"), max_bytes=1 << 30)
        directory = PeerDirectory("me")
        # the owner of every key is a node nobody is listening on
        directory.set_nodes({"dead": ("127.0.0.1", 1)})
        store = ClusterCacheStore(local, directory, token="t", rpc_timeout=0.5)
        calls = []

        def compute():
            calls.append(1)
            return np.arange(8)

        got = store.get_or_compute("k/any", compute)
        np.testing.assert_array_equal(got, np.arange(8))
        assert calls == [1]
        assert store.counts()["owner_failures"] >= 1
        # reads likewise degrade instead of raising
        assert store.get("k/other", "dflt") == "dflt"

    def test_pickle_roundtrip_keeps_topology(self, tmp_path):
        local = DiskCacheStore(str(tmp_path / "solo"), max_bytes=1 << 30)
        directory = PeerDirectory("me")
        directory.set_nodes({"me": ("127.0.0.1", 1), "peer": ("127.0.0.1", 2)})
        store = ClusterCacheStore(local, directory, token="t")
        assert store.process_safe
        clone = pickle.loads(pickle.dumps(store))
        assert clone.directory.nodes() == directory.nodes()
        assert clone.token == "t"
        assert clone.counts()["remote_hits"] == 0
