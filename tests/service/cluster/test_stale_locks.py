"""Stale-lock reclaim after a SIGKILLed holder, box-local and cluster.

Three layers share one crash-recovery story:

* ``FileLock`` (flock) — the kernel drops the lock with the process, so
  a SIGKILLed holder can never wedge later acquirers.
* ``DiskCacheStore.get_or_compute`` — built on the per-key flock; a
  killed computer's lock evaporates and the value is computed exactly
  once more (or zero times, if the victim got as far as publishing).
* ``CacheLeaseTable`` — the cross-node analogue has no shared kernel,
  so it substitutes a TTL: a lease whose holder died expires and the
  next acquirer gets a fresh grant.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.service import DiskCacheStore, FileLock
from repro.service.cluster import CacheLeaseTable


def _hold_lock(path: str, acquired) -> None:
    lock = FileLock(path, timeout=5.0)
    lock.acquire()
    acquired.set()
    time.sleep(60)  # never reached: parent SIGKILLs us


def _fill_then_stall(root: str, key: str, acquired) -> None:
    store = DiskCacheStore(root, max_bytes=1 << 30)
    store.put(key, np.arange(6))
    acquired.set()
    time.sleep(60)


@pytest.fixture
def mp_ctx():
    return multiprocessing.get_context("fork")


class TestFileLockReclaim:
    def test_sigkilled_holder_releases_lock(self, tmp_path, mp_ctx):
        path = str(tmp_path / "x.lock")
        acquired = mp_ctx.Event()
        proc = mp_ctx.Process(target=_hold_lock, args=(path, acquired))
        proc.start()
        try:
            assert acquired.wait(10)
            # the child really holds it: a short acquire times out
            quick = FileLock(path, timeout=0.2)
            from repro.service import LockTimeout

            with pytest.raises(LockTimeout):
                quick.acquire()
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(10)
            # flock died with the holder; reclaim needs no cleanup step
            reclaimed = FileLock(path, timeout=5.0)
            reclaimed.acquire()
            assert reclaimed.held
            reclaimed.release()
        finally:
            if proc.is_alive():
                proc.kill()
                proc.join(5)


class TestDiskCacheReclaim:
    def test_killed_computer_does_not_wedge_get_or_compute(
        self, tmp_path, mp_ctx
    ):
        root = str(tmp_path / "store")
        key = "step2/sad/k1"
        # the victim takes the per-key compute lock and dies holding it
        lock_holder = mp_ctx.Event()
        store = DiskCacheStore(root, max_bytes=1 << 30)
        lock_path = store.lock_path_for(key)
        proc = mp_ctx.Process(target=_hold_lock, args=(lock_path, lock_holder))
        proc.start()
        try:
            assert lock_holder.wait(10)
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(10)
            calls = []

            def compute():
                calls.append(1)
                return np.arange(4)

            got = store.get_or_compute(key, compute)
            np.testing.assert_array_equal(got, np.arange(4))
            assert calls == [1]  # computed once, never double
        finally:
            if proc.is_alive():
                proc.kill()
                proc.join(5)

    def test_published_value_survives_killed_holder_without_recompute(
        self, tmp_path, mp_ctx
    ):
        root = str(tmp_path / "store")
        key = "step2/sad/k2"
        published = mp_ctx.Event()
        proc = mp_ctx.Process(target=_fill_then_stall, args=(root, key, published))
        proc.start()
        try:
            assert published.wait(10)
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(10)
            store = DiskCacheStore(root, max_bytes=1 << 30)
            got = store.get_or_compute(
                key, lambda: pytest.fail("value already published")
            )
            np.testing.assert_array_equal(got, np.arange(6))
        finally:
            if proc.is_alive():
                proc.kill()
                proc.join(5)


class TestClusterLeaseReclaim:
    def test_ttl_substitutes_for_flock_across_nodes(self):
        table = CacheLeaseTable(ttl=0.05)
        assert table.acquire("k", "victim", ready=False)["state"] == "granted"
        # the victim node is SIGKILLed mid-compute: nothing releases
        assert table.acquire("k", "next", ready=False)["state"] == "wait"
        time.sleep(0.08)
        assert table.acquire("k", "next", ready=False)["state"] == "granted"
        assert table.reclaimed == 1
