"""Differential bit-identity: one node vs three, every job kind.

The acceptance bar for the cluster tier: a job's artifact must be a
pure function of its spec, never of the node that happened to run it.
Each spec in the matrix (mosaic/library x dense/sparse Step 2) runs
through a single-node cluster and a three-node cluster; the SHA-256
``result_digest`` over the result image + permutation — computed on the
executing node, shipped in the terminal event — must match exactly.
"""

from __future__ import annotations

import pytest

from repro.imaging import save_image
from repro.library import (
    LibraryIndex,
    synthetic_target,
    write_synthetic_library,
)
from repro.service.client import MosaicServiceClient

from .conftest import TOKEN, MiniCluster, run_async, spec_dict


@pytest.fixture(scope="module")
def library_env(tmp_path_factory):
    root = tmp_path_factory.mktemp("cluster-diff-lib")
    libdir = root / "lib"
    write_synthetic_library(libdir, 40, size=16, seed=11)
    target = root / "target.pgm"
    save_image(target, synthetic_target(64, seed=6))
    index, _ = LibraryIndex.from_directory(libdir, tile_size=8, thumb_size=16)
    npz = root / "lib.npz"
    index.save(npz)
    return {"npz": str(npz), "target": str(target)}


def spec_matrix(library_env) -> list[dict]:
    mosaic_dense = spec_dict("diff-mosaic-dense", size=32, seed=9)
    mosaic_sparse = spec_dict(
        "diff-mosaic-sparse", size=32, seed=9, shortlist_top_k=4
    )
    library_dense = {
        "name": "diff-lib-dense",
        "kind": "library",
        "input": library_env["npz"],
        "target": library_env["target"],
        "size": 64,
        "tile_size": 8,
        "thumb_size": 16,
        "top_k": 8,
        "seed": 4,
    }
    library_sparse = dict(
        library_dense, name="diff-lib-sparse", shortlist_top_k=4
    )
    return [mosaic_dense, mosaic_sparse, library_dense, library_sparse]


async def run_specs(cluster: MiniCluster, specs: list[dict]) -> dict[str, dict]:
    """Run every spec to completion; returns name -> terminal evidence."""
    client = MosaicServiceClient(cluster.base_url, token=TOKEN)
    out: dict[str, dict] = {}
    for payload in specs:
        job = await cluster.call(client.submit, payload)
        events = await cluster.call(lambda j=job: list(client.events(j["job_id"])))
        terminal = events[-1]["payload"]
        assert terminal["state"] == "DONE", (payload["name"], terminal)
        record = await cluster.call(client.job, job["job_id"])
        out[payload["name"]] = {
            "digest": terminal.get("result_digest"),
            "node": record["node"],
        }
    return out


class TestDifferentialBitIdentity:
    def test_results_identical_across_topologies(self, library_env, tmp_path):
        specs = spec_matrix(library_env)

        async def solo():
            async with MiniCluster(nodes=1, cache_root=tmp_path / "solo") as c:
                return await run_specs(c, specs)

        async def trio():
            async with MiniCluster(nodes=3, cache_root=tmp_path / "trio") as c:
                return await run_specs(c, specs)

        single = run_async(solo())
        triple = run_async(trio())

        assert set(single) == set(triple) == {s["name"] for s in specs}
        for name in single:
            assert single[name]["digest"] is not None, name
            assert single[name]["digest"] == triple[name]["digest"], name
        # sanity: the digest discriminates (not a constant).  Dense and
        # sparse *library* runs may legitimately converge to the same
        # artifact on a small library, so only require >1 distinct value.
        assert len({v["digest"] for v in single.values()}) > 1
