"""Coordinator end-to-end: dispatch, replication, failure, resume.

Everything runs in one asyncio loop via ``MiniCluster``; the stock
``MosaicServiceClient`` talks to the coordinator exactly as it talks to
a single-node front — the cluster tier is protocol-transparent.
"""

from __future__ import annotations

import asyncio
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.client import MosaicServiceClient

from .conftest import TOKEN, MiniCluster, SweepRunner, run_async, spec_dict


def make_client(cluster: MiniCluster, **kwargs) -> MosaicServiceClient:
    # A stream idle for 2 minutes is a dead cluster: fail the test
    # instead of wedging teardown on a log that will never close.
    kwargs.setdefault("stream_timeout", 120.0)
    return MosaicServiceClient(cluster.base_url, token=TOKEN, **kwargs)


class TestSubmitAndStream:
    def test_job_completes_with_gap_free_stamped_events(self):
        async def scenario():
            async with MiniCluster(nodes=2) as cluster:
                client = make_client(cluster)
                job = await cluster.call(client.submit, spec_dict("c1"))
                assert job["node"] in ("n0", "n1")
                events = await cluster.call(
                    lambda: list(client.events(job["job_id"]))
                )
                assert [e["seq"] for e in events] == list(range(len(events)))
                assert events[-1]["terminal"]
                assert events[-1]["payload"]["state"] == "DONE"
                assert sum(1 for e in events if e.get("terminal")) == 1
                # every replicated event carries the coordinator lag stamp
                assert all(
                    isinstance(e["payload"].get("ts"), float) for e in events
                )
                # the summary shows the digest the node computed
                record = await cluster.call(client.job, job["job_id"])
                assert record["state"] == "DONE"
                assert record["node"] == job["node"]
                return events

        run_async(scenario())

    def test_resume_from_seq_mid_and_after_terminal(self):
        async def scenario():
            async with MiniCluster(nodes=2) as cluster:
                client = make_client(cluster)
                job = await cluster.call(client.submit, spec_dict("c2"))
                events = await cluster.call(
                    lambda: list(client.events(job["job_id"]))
                )
                total = len(events)
                assert total >= 3
                # replay from the middle, after the job is long gone
                tail = await cluster.call(
                    lambda: list(client.events(job["job_id"], from_seq=total - 2))
                )
                assert [e["seq"] for e in tail] == [total - 2, total - 1]
                assert tail == events[-2:]

        run_async(scenario())

    def test_shard_affinity_same_spec_same_node(self):
        async def scenario():
            async with MiniCluster(nodes=3) as cluster:
                client = make_client(cluster)
                nodes = set()
                for attempt in range(3):
                    job = await cluster.call(
                        client.submit, spec_dict("affine", seed=99)
                    )
                    nodes.add(job["node"])
                    await cluster.call(
                        lambda: list(client.events(job["job_id"]))
                    )
                assert len(nodes) == 1  # same fingerprint -> same owner

        run_async(scenario())

    def test_distinct_specs_spread_over_nodes(self):
        async def scenario():
            async with MiniCluster(nodes=2) as cluster:
                client = make_client(cluster)
                images = [
                    "portrait", "sailboat", "airplane", "peppers",
                    "barbara", "baboon", "tiffany",
                ]
                nodes = set()
                for index in range(10):
                    # the shard key is the Step-2 fingerprint: distinct
                    # image pairs, not names/seeds, make distinct shards
                    job = await cluster.call(
                        client.submit,
                        spec_dict(
                            f"spread-{index}",
                            input=images[index % 7],
                            target=images[(index + 1 + index // 7) % 7],
                            size=16,
                        ),
                    )
                    nodes.add(job["node"])
                    await cluster.call(
                        lambda: list(client.events(job["job_id"]))
                    )
                assert nodes == {"n0", "n1"}

        run_async(scenario())

    def test_cancel_forwarded_to_executing_node(self):
        async def scenario():
            factory = lambda index: SweepRunner(sweeps=2000, dwell=0.01)
            async with MiniCluster(nodes=2, runner_factory=factory) as cluster:
                client = make_client(cluster)
                job = await cluster.call(client.submit, spec_dict("c-cancel"))
                victim = next(
                    n for n in cluster.nodes if n.node_id == job["node"]
                )
                await cluster.call(victim.runner.first_sweep.wait, 10)
                accepted = await cluster.call(client.cancel, job["job_id"])
                assert accepted is True
                events = await cluster.call(
                    lambda: list(client.events(job["job_id"]))
                )
                assert events[-1]["payload"]["state"] == "CANCELLED"

        run_async(scenario())


class TestFailureHandling:
    def test_node_crash_redispatches_with_seamless_stream(self):
        async def scenario():
            factory = lambda index: SweepRunner(sweeps=30, dwell=0.05)
            async with MiniCluster(
                nodes=2, runner_factory=factory, heartbeat_deadline=0.6
            ) as cluster:
                client = make_client(cluster)
                job = await cluster.call(client.submit, spec_dict("crashy"))
                victim = next(
                    n for n in cluster.nodes if n.node_id == job["node"]
                )
                survivor = next(
                    n for n in cluster.nodes if n.node_id != job["node"]
                )

                events: list[dict] = []
                errors: list[Exception] = []

                def stream():
                    try:
                        for event in client.events(job["job_id"]):
                            events.append(event)
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)

                thread = threading.Thread(target=stream, daemon=True)
                thread.start()
                await cluster.call(victim.runner.first_sweep.wait, 10)
                await asyncio.sleep(0.2)
                await victim.crash()
                for _ in range(200):
                    await asyncio.sleep(0.1)
                    if events and events[-1].get("terminal"):
                        break
                await cluster.call(thread.join, 5)

                assert not errors, errors
                kinds = [e["kind"] for e in events]
                assert kinds.count("redispatch") == 1
                marker = events[kinds.index("redispatch")]
                assert marker["payload"]["from_node"] == victim.node_id
                assert marker["payload"]["to_node"] == survivor.node_id
                # the stream never broke, never gapped, ended exactly once
                assert [e["seq"] for e in events] == list(range(len(events)))
                assert sum(1 for e in events if e.get("terminal")) == 1
                assert events[-1]["payload"]["state"] == "DONE"
                # late resume replays across the redispatch boundary
                tail = await cluster.call(
                    lambda: list(client.events(job["job_id"], from_seq=1))
                )
                assert tail == events[1:]
                assert (
                    cluster.coordinator.metrics.counter(
                        "cluster_jobs_redispatched_total"
                    ).value
                    == 1
                )

        run_async(scenario())

    def test_crash_with_no_survivor_fails_job_cleanly(self):
        async def scenario():
            factory = lambda index: SweepRunner(sweeps=2000, dwell=0.01)
            async with MiniCluster(
                nodes=1, runner_factory=factory, heartbeat_deadline=0.6
            ) as cluster:
                client = make_client(cluster)
                job = await cluster.call(client.submit, spec_dict("orphan"))
                victim = cluster.nodes[0]
                await cluster.call(victim.runner.first_sweep.wait, 10)
                await victim.crash()
                events = await cluster.call(
                    lambda: list(client.events(job["job_id"]))
                )
                assert events[-1]["terminal"]
                assert events[-1]["payload"]["state"] == "FAILED"
                assert "no live node" in events[-1]["payload"]["error"]

        run_async(scenario())


class TestFrontBehaviour:
    def test_auth_required_on_v1(self):
        async def scenario():
            async with MiniCluster(nodes=1) as cluster:
                bad = MosaicServiceClient(cluster.base_url, token="wrong")

                def poke():
                    with pytest.raises(Exception) as err:
                        bad.submit(spec_dict("nope"))
                    return err

                err = await cluster.call(poke)
                assert "401" in str(err.value)

        run_async(scenario())

    def test_invalid_spec_rejected_with_400(self):
        async def scenario():
            async with MiniCluster(nodes=1) as cluster:
                client = make_client(cluster)

                def poke():
                    with pytest.raises(Exception) as err:
                        client.submit({"input": "portrait"})  # no target
                    return err

                err = await cluster.call(poke)
                assert "400" in str(err.value)
                # nothing was dispatched for the bad payload
                assert cluster.coordinator.jobs == {}

        run_async(scenario())

    def test_healthz_and_cluster_introspection(self):
        async def scenario():
            async with MiniCluster(nodes=2) as cluster:
                def fetch(path, token=None):
                    req = urllib.request.Request(cluster.base_url + path)
                    if token:
                        req.add_header("Authorization", f"Bearer {token}")
                    with urllib.request.urlopen(req, timeout=10) as resp:
                        return resp.read().decode()

                import json

                health = json.loads(await cluster.call(fetch, "/healthz"))
                assert health["role"] == "coordinator"
                assert health["nodes_up"] == 2

                info = json.loads(
                    await cluster.call(fetch, "/internal/v1/cluster", TOKEN)
                )
                assert {n["node_id"] for n in info["nodes"]} == {"n0", "n1"}
                assert all(n["state"] == "up" for n in info["nodes"])

        run_async(scenario())

    def test_metrics_exposes_cluster_series(self):
        async def scenario():
            async with MiniCluster(nodes=2) as cluster:
                client = make_client(cluster)
                job = await cluster.call(client.submit, spec_dict("m1"))
                await cluster.call(lambda: list(client.events(job["job_id"])))
                text = await cluster.call(client.metrics_text)
                for series in (
                    "cluster_nodes_up 2",
                    "node_up_n0 1",
                    "node_up_n1 1",
                    "cluster_jobs_dispatched_total 1",
                    "cluster_events_replicated_total",
                    "cluster_cache_remote_hit_ratio",
                    "cluster_pending_jobs",
                ):
                    assert series in text, series

        run_async(scenario())

    def test_no_nodes_means_503(self):
        async def scenario():
            async with MiniCluster(nodes=0) as cluster:
                client = make_client(cluster)

                def poke():
                    with pytest.raises(Exception) as err:
                        client.submit(spec_dict("nowhere"))
                    return err

                err = await cluster.call(poke)
                assert "503" in str(err.value)

        run_async(scenario())
