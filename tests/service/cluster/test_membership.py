"""Membership registry and the node-side peer directory."""

from __future__ import annotations

import pickle
import time

import pytest

from repro.service.cluster import ClusterMembership, PeerDirectory
from repro.service.metrics import MetricsRegistry


class TestClusterMembership:
    def test_register_and_query(self):
        membership = ClusterMembership(heartbeat_deadline=1.0)
        membership.register("a", "127.0.0.1", 9001)
        membership.register("b", "127.0.0.1", 9002)
        assert membership.is_up("a")
        assert sorted(membership.live_ids()) == ["a", "b"]
        assert membership.get("a").url == "http://127.0.0.1:9001"
        assert membership.get("missing") is None

    def test_heartbeat_unknown_node_rejected(self):
        membership = ClusterMembership(heartbeat_deadline=1.0)
        assert membership.heartbeat("ghost") is False

    def test_heartbeat_updates_stats(self):
        membership = ClusterMembership(heartbeat_deadline=1.0)
        membership.register("a", "h", 1)
        assert membership.heartbeat("a", {"pending_jobs": 3}) is True
        assert membership.get("a").stats == {"pending_jobs": 3}
        assert membership.get("a").heartbeats == 1

    def test_sweep_marks_overdue_down(self):
        membership = ClusterMembership(heartbeat_deadline=0.5)
        membership.register("a", "h", 1)
        membership.register("b", "h", 2)
        membership.heartbeat("a")
        # push b's heartbeat into the past, beyond the deadline
        membership.get("b").last_heartbeat = time.monotonic() - 2.0
        dead = membership.sweep()
        assert [info.node_id for info in dead] == ["b"]
        assert not membership.is_up("b")
        assert membership.live_ids() == ["a"]
        # a second sweep reports nothing new
        assert membership.sweep() == []

    def test_down_node_cannot_heartbeat_back_to_life(self):
        membership = ClusterMembership(heartbeat_deadline=0.1)
        membership.register("a", "h", 1)
        membership.get("a").last_heartbeat = time.monotonic() - 1.0
        membership.sweep()
        # the coordinator already moved its jobs: heartbeat is refused...
        assert membership.heartbeat("a") is False
        assert not membership.is_up("a")
        # ...and the node must re-register to rejoin
        membership.register("a", "h", 1)
        assert membership.is_up("a")

    def test_version_bumps_on_every_change(self):
        membership = ClusterMembership(heartbeat_deadline=0.1)
        v0 = membership.version
        membership.register("a", "h", 1)
        v1 = membership.version
        assert v1 > v0
        membership.get("a").last_heartbeat = time.monotonic() - 1.0
        membership.sweep()
        v2 = membership.version
        assert v2 > v1
        membership.remove("a")
        assert membership.version > v2

    def test_snapshot_lists_live_nodes_only(self):
        membership = ClusterMembership(heartbeat_deadline=0.1)
        membership.register("a", "h", 1)
        membership.register("b", "h", 2)
        membership.get("b").last_heartbeat = time.monotonic() - 1.0
        membership.sweep()
        snap = membership.snapshot()
        assert list(snap["nodes"]) == ["a"]
        assert snap["version"] == membership.version

    def test_ranked_excludes(self):
        membership = ClusterMembership(heartbeat_deadline=1.0)
        for node_id in ("a", "b", "c"):
            membership.register(node_id, "h", 1)
        ranked = membership.ranked("some-key")
        assert len(ranked) == 3
        tail = membership.ranked("some-key", exclude={ranked[0].node_id})
        assert [info.node_id for info in tail] == [
            info.node_id for info in ranked[1:]
        ]

    def test_metrics_gauges(self):
        metrics = MetricsRegistry()
        membership = ClusterMembership(heartbeat_deadline=0.1, metrics=metrics)
        membership.register("a", "h", 1)
        assert metrics.gauge("cluster_nodes_up").value == 1
        assert metrics.gauge("node_up_a").value == 1
        membership.get("a").last_heartbeat = time.monotonic() - 1.0
        membership.sweep()
        assert metrics.gauge("cluster_nodes_up").value == 0
        assert metrics.gauge("node_up_a").value == 0

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            ClusterMembership(heartbeat_deadline=0)


class TestPeerDirectory:
    def test_owner_falls_back_to_self_when_empty(self):
        directory = PeerDirectory("me")
        assert directory.owner("any-key") == "me"

    def test_set_nodes_and_ownership(self):
        directory = PeerDirectory("a")
        directory.set_nodes({"a": ("h", 1), "b": ("h", 2)})
        owners = {directory.owner(f"k{i}") for i in range(50)}
        assert owners == {"a", "b"}
        assert directory.address("b") == ("h", 2)
        assert len(directory) == 2

    def test_stale_push_rejected(self):
        directory = PeerDirectory("a")
        assert directory.set_nodes({"a": ("h", 1)}, version=5) is True
        assert directory.set_nodes({"b": ("h", 2)}, version=4) is False
        assert list(directory.nodes()) == ["a"]
        assert directory.set_nodes({"b": ("h", 2)}, version=6) is True
        assert list(directory.nodes()) == ["b"]

    def test_pickle_roundtrip(self):
        directory = PeerDirectory("a")
        directory.set_nodes({"a": ("h", 1), "b": ("h", 2)}, version=3)
        clone = pickle.loads(pickle.dumps(directory))
        assert clone.self_id == "a"
        assert clone.version == 3
        assert clone.nodes() == directory.nodes()
        assert clone.owner("k") == directory.owner("k")
