"""Node-side pieces: PacedRunner, internal RPC routes, shared validation."""

from __future__ import annotations

import json
import time
import urllib.request

import numpy as np
import pytest

from repro.exceptions import JobError
from repro.service import JobSpec, WorkerPool
from repro.service.cluster import NodeRpcClient, PacedRunner, RpcError
from repro.service.diskcache import encode_payload
from repro.service.http.protocol import HttpError
from repro.service.http.server import spec_from_payload

from .conftest import TOKEN, MiniCluster, run_async, spec_dict


class TestPacedRunner:
    def test_enforces_floor(self):
        runner = PacedRunner(lambda spec: "done", floor_seconds=0.1)
        started = time.monotonic()
        assert runner(JobSpec(input="portrait", target="sailboat")) == "done"
        assert time.monotonic() - started >= 0.1

    def test_slow_inner_not_padded(self):
        def slow(spec):
            time.sleep(0.05)
            return "slow"

        runner = PacedRunner(slow, floor_seconds=0.01)
        started = time.monotonic()
        runner(JobSpec(input="portrait", target="sailboat"))
        assert time.monotonic() - started < 0.2

    def test_forwards_capabilities_and_context(self):
        class Inner:
            accepts_context = True
            accepts_batcher = True
            batcher = None

            def __call__(self, spec, ctx=None):
                return ("ran", ctx)

        inner = Inner()
        runner = PacedRunner(inner, floor_seconds=0.0)
        assert runner.accepts_context and runner.accepts_batcher
        runner.batcher = "a-batcher"
        assert inner.batcher == "a-batcher"
        assert runner.batcher == "a-batcher"
        result, ctx = runner(
            JobSpec(input="portrait", target="sailboat"), "the-ctx"
        )
        assert (result, ctx) == ("ran", "the-ctx")

    def test_negative_floor_rejected(self):
        with pytest.raises(ValueError):
            PacedRunner(lambda spec: None, floor_seconds=-1)


class TestInternalRoutes:
    def test_cache_entry_roundtrip_and_miss(self, tmp_path):
        async def scenario():
            async with MiniCluster(nodes=1, cache_root=tmp_path) as cluster:
                node = cluster.nodes[0]
                rpc = NodeRpcClient(
                    "127.0.0.1", node.front.port, token=TOKEN, timeout=5
                )
                assert await cluster.call(rpc.cache_get, "no/such/key") is None

                value = np.arange(12).reshape(3, 4)
                data, layout = encode_payload(value)
                await cluster.call(rpc.cache_put, "step2/sad/abc", data, layout)
                assert node.cluster_cache.local.contains("step2/sad/abc")

                fetched = await cluster.call(rpc.cache_get, "step2/sad/abc")
                assert fetched is not None
                got_data, got_layout = fetched
                from repro.service.diskcache import decode_payload

                np.testing.assert_array_equal(
                    decode_payload(got_data, got_layout), value
                )

        run_async(scenario())

    def test_lease_routes(self, tmp_path):
        async def scenario():
            async with MiniCluster(nodes=1, cache_root=tmp_path) as cluster:
                node = cluster.nodes[0]
                rpc = NodeRpcClient(
                    "127.0.0.1", node.front.port, token=TOKEN, timeout=5
                )
                first = await cluster.call(rpc.lease_acquire, "k/1", "peer-a")
                assert first["state"] == "granted"
                second = await cluster.call(rpc.lease_acquire, "k/1", "peer-b")
                assert second["state"] == "wait"
                # release raises on failure, returns None on success
                await cluster.call(rpc.lease_release, "k/1", "peer-a")
                third = await cluster.call(rpc.lease_acquire, "k/1", "peer-b")
                assert third["state"] == "granted"
                # a key the node already holds answers ready
                node.cluster_cache.local.put("k/ready", np.arange(3))
                ready = await cluster.call(rpc.lease_acquire, "k/ready", "peer-b")
                assert ready["state"] == "ready"

        run_async(scenario())

    def test_internal_routes_require_token(self, tmp_path):
        async def scenario():
            async with MiniCluster(nodes=1, cache_root=tmp_path) as cluster:
                node = cluster.nodes[0]
                bad = NodeRpcClient(
                    "127.0.0.1", node.front.port, token="wrong", timeout=5
                )

                def poke():
                    with pytest.raises(RpcError) as err:
                        bad.cache_get("any/key")
                    return err.value

                err = await cluster.call(poke)
                assert err.status == 401

        run_async(scenario())

    def test_status_route_reports_node_identity(self):
        async def scenario():
            async with MiniCluster(nodes=2) as cluster:
                node = cluster.nodes[0]

                def fetch():
                    req = urllib.request.Request(
                        f"http://127.0.0.1:{node.front.port}/internal/v1/status"
                    )
                    req.add_header("Authorization", f"Bearer {TOKEN}")
                    with urllib.request.urlopen(req, timeout=5) as resp:
                        return json.loads(resp.read())

                status = await cluster.call(fetch)
                assert status["node_id"] == "n0"
                # the coordinator's pushes reached this node's directory
                assert status["membership_version"] >= 1
                assert len(node.directory) == 2

        run_async(scenario())

    def test_membership_push_rejects_stale_version(self):
        async def scenario():
            async with MiniCluster(nodes=1) as cluster:
                node = cluster.nodes[0]
                version = node.directory.version

                def push(v):
                    body = json.dumps(
                        {"version": v, "nodes": {"x": {"host": "h", "port": 1}}}
                    ).encode()
                    req = urllib.request.Request(
                        f"http://127.0.0.1:{node.front.port}/internal/v1/membership",
                        data=body,
                        method="POST",
                        headers={
                            "Authorization": f"Bearer {TOKEN}",
                            "Content-Type": "application/json",
                        },
                    )
                    with urllib.request.urlopen(req, timeout=5) as resp:
                        return json.loads(resp.read())

                stale = await cluster.call(push, version)
                assert stale["accepted"] is False
                fresh = await cluster.call(push, version + 1000)
                assert fresh["accepted"] is True
                assert "x" in node.directory.nodes()

        run_async(scenario())


class TestSpecValidation:
    def test_unknown_field(self):
        with pytest.raises(HttpError) as err:
            spec_from_payload(spec_dict("x", bogus_knob=1))
        assert err.value.status == 400
        assert err.value.code == "unknown_field"
        assert "bogus_knob" in err.value.message

    def test_unknown_kind(self):
        with pytest.raises(HttpError) as err:
            spec_from_payload(spec_dict("x", kind="fresco"))
        assert err.value.status == 400
        assert err.value.code == "unknown_kind"

    def test_invalid_spec_values(self):
        with pytest.raises(HttpError) as err:
            spec_from_payload(spec_dict("x", timeout=-3))
        assert err.value.status == 400
        assert err.value.code == "invalid_spec"

    def test_valid_payload_builds_spec(self):
        spec = spec_from_payload(spec_dict("ok"))
        assert isinstance(spec, JobSpec)
        assert spec.name == "ok"


class TestBatchWindowProcessGuard:
    def test_process_pool_with_batch_window_rejected(self):
        with pytest.raises(JobError, match="thread executor"):
            WorkerPool(
                workers=1,
                runner=lambda spec: None,
                kind="process",
                batch_window=0.05,
            )

    def test_thread_pool_with_batch_window_allowed(self):
        pool = WorkerPool(
            workers=1,
            runner=lambda spec: None,
            kind="thread",
            batch_window=0.05,
        )
        pool.shutdown()
