"""Rendezvous hashing: determinism, stability, minimal disruption."""

from __future__ import annotations

import pytest

from repro.service.cluster import (
    rendezvous_owner,
    rendezvous_ranked,
    rendezvous_score,
)

MEMBERS = ["node-a", "node-b", "node-c", "node-d"]


def keys(n: int = 200) -> list[str]:
    return [f"step2/fp-{i:04d}" for i in range(n)]


class TestScore:
    def test_deterministic(self):
        assert rendezvous_score("m", "k") == rendezvous_score("m", "k")

    def test_member_and_key_both_matter(self):
        assert rendezvous_score("m1", "k") != rendezvous_score("m2", "k")
        assert rendezvous_score("m", "k1") != rendezvous_score("m", "k2")

    def test_no_concatenation_ambiguity(self):
        # ("ab", "c") and ("a", "bc") must not collide: the separator
        # byte keeps member/key boundaries distinct.
        assert rendezvous_score("ab", "c") != rendezvous_score("a", "bc")


class TestRanked:
    def test_full_permutation(self):
        ranked = rendezvous_ranked("some-key", MEMBERS)
        assert sorted(ranked) == sorted(MEMBERS)

    def test_deterministic_across_input_order(self):
        ranked = rendezvous_ranked("some-key", MEMBERS)
        assert ranked == rendezvous_ranked("some-key", list(reversed(MEMBERS)))

    def test_owner_is_first_ranked(self):
        for key in keys(50):
            assert rendezvous_owner(key, MEMBERS) == rendezvous_ranked(key, MEMBERS)[0]

    def test_empty_members(self):
        assert rendezvous_ranked("k", []) == []
        assert rendezvous_owner("k", []) is None


class TestMinimalDisruption:
    def test_removing_a_member_only_remaps_its_keys(self):
        before = {k: rendezvous_owner(k, MEMBERS) for k in keys()}
        survivors = [m for m in MEMBERS if m != "node-b"]
        after = {k: rendezvous_owner(k, survivors) for k in keys()}
        for key in keys():
            if before[key] != "node-b":
                assert after[key] == before[key], key
            else:
                assert after[key] in survivors

    def test_adding_a_member_only_claims_keys(self):
        before = {k: rendezvous_owner(k, MEMBERS) for k in keys()}
        grown = MEMBERS + ["node-e"]
        after = {k: rendezvous_owner(k, grown) for k in keys()}
        moved = [k for k in keys() if after[k] != before[k]]
        assert all(after[k] == "node-e" for k in moved)
        # the new node takes roughly 1/5 of the keys, not none, not all
        assert 0 < len(moved) < len(keys())

    def test_distribution_is_roughly_even(self):
        counts = {m: 0 for m in MEMBERS}
        for key in keys(1000):
            counts[rendezvous_owner(key, MEMBERS)] += 1
        for member, count in counts.items():
            assert 150 < count < 350, (member, count)


class TestFailoverOrder:
    def test_ranked_tail_is_failover_sequence(self):
        key = "step2/fp-0042"
        ranked = rendezvous_ranked(key, MEMBERS)
        # dropping the owner promotes exactly the next-ranked member
        assert rendezvous_owner(key, [m for m in MEMBERS if m != ranked[0]]) == ranked[1]
