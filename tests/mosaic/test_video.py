"""Tests for the video mosaic session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.imaging.synthetic import standard_image
from repro.mosaic.video import VideoMosaicSession


@pytest.fixture()
def session() -> VideoMosaicSession:
    return VideoMosaicSession(standard_image("portrait", 64), tile_size=8)


def _frames(count: int) -> list[np.ndarray]:
    base = standard_image("sailboat", 64).astype(int)
    return [
        np.clip(base + 4 * i, 0, 255).astype(np.uint8) for i in range(count)
    ]


class TestProcessing:
    def test_frame_shape_and_error(self, session):
        frame = session.process_frame(standard_image("sailboat", 64))
        assert frame.image.shape == (64, 64)
        assert frame.total_error > 0
        assert frame.frame_index == 0

    def test_frame_counter(self, session):
        for expected in range(3):
            frame = session.process_frame(standard_image("sailboat", 64))
            assert frame.frame_index == expected
        assert session.frames_processed == 3

    def test_warm_start_reduces_sweeps(self, session):
        frames = _frames(3)
        results = session.process_sequence(frames)
        assert results[1].sweeps <= results[0].sweeps
        assert results[2].sweeps <= results[0].sweeps

    def test_identical_frame_converges_in_one_sweep(self, session):
        target = standard_image("sailboat", 64)
        session.process_frame(target)
        second = session.process_frame(target)
        assert second.sweeps == 1

    def test_reset_forgets_warm_start(self, session):
        target = standard_image("sailboat", 64)
        first = session.process_frame(target)
        session.reset()
        again = session.process_frame(target)
        assert again.sweeps == first.sweeps  # cold start repeats itself

    def test_quality_matches_cold_pipeline(self, session):
        """Warm-started results stay 2-opt optimal, so quality matches a
        from-scratch run within a small band."""
        from repro import generate_photomosaic

        target = standard_image("sailboat", 64)
        warm = session.process_frame(target)
        cold = generate_photomosaic(
            standard_image("portrait", 64), target, tile_size=8, algorithm="parallel"
        )
        assert abs(warm.total_error - cold.total_error) <= 0.05 * cold.total_error

    def test_timings_per_frame(self, session):
        frame = session.process_frame(standard_image("sailboat", 64))
        for phase in ("step2_error_matrix", "step3_rearrangement"):
            assert frame.timings.get(phase) > 0


class TestValidation:
    def test_rejects_wrong_frame_shape(self, session):
        with pytest.raises(ValidationError, match="frame shape"):
            session.process_frame(standard_image("sailboat", 32))

    def test_groups_precomputed_once(self, session):
        groups_before = session.groups
        session.process_frame(standard_image("sailboat", 64))
        assert session.groups is groups_before

    def test_histogram_match_disabled(self):
        session = VideoMosaicSession(
            standard_image("portrait", 64), tile_size=8, histogram_match=False
        )
        frame = session.process_frame(standard_image("sailboat", 64))
        # Output pixels are exactly the raw input's (no remap).
        assert (
            np.sort(frame.image.ravel())
            == np.sort(standard_image("portrait", 64).ravel())
        ).all()
