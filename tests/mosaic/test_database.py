"""Tests for the database-mosaic baseline (paper Fig. 1 mode)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.imaging.synthetic import standard_image
from repro.mosaic.database import DatabaseMosaic, TileDatabase


@pytest.fixture(scope="module")
def database() -> TileDatabase:
    return TileDatabase.from_image_tiles(standard_image("baboon", 64), 8)


class TestTileDatabase:
    def test_from_image_tiles(self, database):
        assert database.size == 64
        assert database.tile_size == 8

    def test_from_images_resizes(self):
        images = [standard_image("peppers", 32), standard_image("sailboat", 48)]
        db = TileDatabase.from_images(images, 8)
        assert db.size == 2
        assert db.tiles.shape == (2, 8, 8)

    def test_from_images_empty(self):
        with pytest.raises(ValidationError, match="at least one"):
            TileDatabase.from_images([], 8)

    def test_mixed_gray_color_rejected(self, rng):
        gray = rng.integers(0, 256, size=(16, 16)).astype(np.uint8)
        color = rng.integers(0, 256, size=(16, 16, 3)).astype(np.uint8)
        with pytest.raises(ValidationError, match="all-gray or all-colour"):
            TileDatabase.from_images([gray, color], 8)


class TestDatabaseMosaic:
    def test_with_reuse_is_argmin(self, database):
        target = standard_image("portrait", 64)
        mosaic, choice = DatabaseMosaic(database).generate(target, allow_reuse=True)
        assert mosaic.shape == target.shape
        # Each position independently takes its cheapest database tile.
        from repro.cost import get_metric
        from repro.tiles.grid import TileGrid

        metric = get_metric("sad")
        grid = TileGrid.for_image(target, 8)
        target_tiles = grid.split(target)
        costs = metric.pairwise(
            metric.prepare(database.tiles), metric.prepare(target_tiles)
        )
        assert (choice == np.argmin(costs, axis=0)).all()

    def test_without_reuse_all_distinct(self, database):
        target = standard_image("portrait", 64)
        _, choice = DatabaseMosaic(database).generate(target, allow_reuse=False)
        assert len(np.unique(choice)) == choice.size

    def test_without_reuse_needs_enough_tiles(self):
        small_db = TileDatabase.from_image_tiles(standard_image("baboon", 32), 8)
        target = standard_image("portrait", 64)  # needs 64 tiles, db has 16
        with pytest.raises(ValidationError, match="needs >="):
            DatabaseMosaic(small_db).generate(target, allow_reuse=False)

    def test_reuse_total_cost_not_worse(self, database):
        """Free reuse can only lower (or tie) the total matching cost."""
        from repro.cost import get_metric
        from repro.tiles.grid import TileGrid

        target = standard_image("portrait", 64)
        metric = get_metric("sad")
        grid = TileGrid.for_image(target, 8)
        costs = metric.pairwise(
            metric.prepare(database.tiles), metric.prepare(grid.split(target))
        )
        gen = DatabaseMosaic(database)
        _, reuse = gen.generate(target, allow_reuse=True)
        _, unique = gen.generate(target, allow_reuse=False)
        cols = np.arange(costs.shape[1])
        assert costs[reuse, cols].sum() <= costs[unique, cols].sum()

    def test_self_database_perfect_reconstruction(self):
        """A target rendered from its own tile database must be exact."""
        target = standard_image("portrait", 64)
        db = TileDatabase.from_image_tiles(target, 8)
        mosaic, _ = DatabaseMosaic(db).generate(target, allow_reuse=False)
        assert (mosaic == target).all()

    def test_gray_color_mismatch(self, database, rng):
        color_target = rng.integers(0, 256, size=(64, 64, 3)).astype(np.uint8)
        with pytest.raises(ValidationError, match="agree"):
            DatabaseMosaic(database).generate(color_target)
