"""Tests for MosaicConfig."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.mosaic.config import ALGORITHMS, MosaicConfig


def test_defaults():
    cfg = MosaicConfig()
    assert cfg.tile_size == 16
    assert cfg.algorithm in ALGORITHMS
    assert cfg.histogram_match is True


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_all_algorithms_accepted(algorithm):
    assert MosaicConfig(algorithm=algorithm).algorithm == algorithm


def test_rejects_unknown_algorithm():
    with pytest.raises(ValidationError, match="algorithm"):
        MosaicConfig(algorithm="annealing")


def test_rejects_bad_tile_size():
    with pytest.raises(ValidationError, match="tile_size"):
        MosaicConfig(tile_size=0)


def test_rejects_bad_max_sweeps():
    with pytest.raises(ValidationError, match="max_sweeps"):
        MosaicConfig(max_sweeps=0)


def test_frozen():
    cfg = MosaicConfig()
    with pytest.raises(Exception):
        cfg.tile_size = 8
