"""Tests for the end-to-end pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.matrix import error_matrix, total_error
from repro.exceptions import ValidationError
from repro.imaging.histogram import match_histogram
from repro.mosaic.config import MosaicConfig
from repro.mosaic.generator import PhotomosaicGenerator, generate_photomosaic
from repro.tiles.grid import TileGrid


class TestGenerate:
    @pytest.mark.parametrize("algorithm", ["optimization", "approximation", "parallel"])
    def test_all_algorithms_run(self, algorithm, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8, algorithm=algorithm)
        assert result.image.shape == inp.shape
        assert result.total_error >= 0

    def test_output_is_tile_permutation_of_adjusted_input(self, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8, algorithm="parallel")
        adjusted = match_histogram(inp, tgt)
        # Pixel multiset preserved: output tiles are a permutation of input tiles.
        assert (np.sort(result.image.ravel()) == np.sort(adjusted.ravel())).all()

    def test_total_error_consistent_with_matrix(self, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8, algorithm="optimization")
        grid = TileGrid.for_image(inp, 8)
        matrix = error_matrix(grid.split(match_histogram(inp, tgt)), grid.split(tgt))
        assert result.total_error == total_error(matrix, result.permutation)

    def test_optimization_lower_bounds_others(self, small_pair):
        inp, tgt = small_pair
        errors = {
            alg: generate_photomosaic(inp, tgt, tile_size=8, algorithm=alg).total_error
            for alg in ("optimization", "approximation", "parallel")
        }
        assert errors["optimization"] <= errors["approximation"]
        assert errors["optimization"] <= errors["parallel"]

    def test_rearrangement_improves_over_identity(self, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8, algorithm="parallel")
        grid = TileGrid.for_image(inp, 8)
        matrix = error_matrix(grid.split(match_histogram(inp, tgt)), grid.split(tgt))
        identity_error = total_error(matrix, np.arange(grid.tile_count))
        assert result.total_error <= identity_error

    def test_timings_recorded(self, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8)
        for phase in ("step1_tiling", "step2_error_matrix", "step3_rearrangement"):
            assert phase in result.timings.phases

    def test_trace_present_for_local_search(self, small_pair):
        inp, tgt = small_pair
        assert generate_photomosaic(inp, tgt, tile_size=8, algorithm="parallel").sweeps
        assert (
            generate_photomosaic(inp, tgt, tile_size=8, algorithm="optimization").sweeps
            is None
        )

    def test_shape_mismatch_rejected(self, small_pair):
        inp, _ = small_pair
        tgt = np.zeros((32, 32), dtype=np.uint8)
        with pytest.raises(ValidationError, match="identical shapes"):
            generate_photomosaic(inp, tgt, tile_size=8)

    def test_color_pipeline(self, rng):
        inp = rng.integers(0, 256, size=(32, 32, 3)).astype(np.uint8)
        tgt = rng.integers(0, 256, size=(32, 32, 3)).astype(np.uint8)
        with pytest.warns(UserWarning, match="histogram matching skipped"):
            result = generate_photomosaic(inp, tgt, tile_size=8, metric="color")
        assert result.image.shape == (32, 32, 3)
        # Histogram matching is gray-only by default: colour passes through.
        assert (np.sort(result.image.ravel()) == np.sort(inp.ravel())).all()

    @pytest.mark.parametrize("solver", ["scipy", "jv", "hungarian", "auction"])
    def test_all_exact_solvers_same_total(self, solver, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(
            inp, tgt, tile_size=8, algorithm="optimization", solver=solver
        )
        reference = generate_photomosaic(
            inp, tgt, tile_size=8, algorithm="optimization", solver="scipy"
        )
        assert result.total_error == reference.total_error

    def test_histogram_match_flag(self, small_pair):
        inp, tgt = small_pair
        on = generate_photomosaic(inp, tgt, tile_size=8, histogram_match=True)
        off = generate_photomosaic(inp, tgt, tile_size=8, histogram_match=False)
        # Without adjustment the pixel multiset is the raw input's.
        assert (np.sort(off.image.ravel()) == np.sort(inp.ravel())).all()
        assert on.total_error != off.total_error


class TestPyramidAlgorithm:
    def test_runs_end_to_end(self, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8, algorithm="pyramid")
        assert result.image.shape == inp.shape
        assert result.meta["pyramid_factor"] == 2
        assert result.meta["coarse_total"] > 0

    def test_quality_between_optimal_and_identity(self, small_pair):
        inp, tgt = small_pair
        pyramid = generate_photomosaic(inp, tgt, tile_size=8, algorithm="pyramid")
        optimal = generate_photomosaic(
            inp, tgt, tile_size=8, algorithm="optimization"
        )
        assert pyramid.total_error >= optimal.total_error
        assert pyramid.total_error <= 1.1 * optimal.total_error

    def test_custom_factor(self, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(
            inp, tgt, tile_size=8, algorithm="pyramid", pyramid_factor=4
        )
        assert result.meta["pyramid_factor"] == 4

    def test_rearrange_stage_rejects_pyramid(self, small_error_matrix):
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8, algorithm="pyramid"))
        with pytest.raises(ValidationError, match="tile stacks"):
            gen.rearrange(small_error_matrix)

    def test_pyramid_with_transforms_rejected(self):
        with pytest.raises(ValidationError, match="cannot combine"):
            MosaicConfig(algorithm="pyramid", allow_transforms=True)


class TestStagedAPI:
    def test_build_error_matrix(self, small_pair):
        inp, tgt = small_pair
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8))
        grid, matrix = gen.build_error_matrix(inp, tgt)
        assert grid.tile_count == 64
        assert matrix.shape == (64, 64)

    def test_rearrange_stage(self, small_error_matrix):
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8, algorithm="parallel"))
        perm, trace, meta = gen.rearrange(small_error_matrix)
        assert perm.shape == (64,)
        assert trace is not None
        assert "kernel_launches" in meta

    def test_preprocess_matches_histograms(self, small_pair):
        inp, tgt = small_pair
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8))
        adjusted = gen.preprocess(inp, tgt)
        assert (adjusted == match_histogram(inp, tgt)).all()

    def test_preprocess_disabled(self, small_pair):
        inp, tgt = small_pair
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8, histogram_match=False))
        assert gen.preprocess(inp, tgt) is inp


class TestColorHistogramMatch:
    """The Section-II adjustment is intensity-only; colour behaviour is an
    explicit choice: warn-and-skip (default) or per-channel matching."""

    @pytest.fixture()
    def color_pair(self, rng):
        return (
            rng.integers(0, 256, size=(32, 32, 3)).astype(np.uint8),
            rng.integers(0, 256, size=(32, 32, 3)).astype(np.uint8),
        )

    def test_skip_warns_by_default(self, color_pair):
        inp, tgt = color_pair
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8))
        with pytest.warns(UserWarning, match="color_histogram_match"):
            assert gen.preprocess(inp, tgt) is inp

    def test_disabled_matching_does_not_warn(self, color_pair):
        import warnings

        inp, tgt = color_pair
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8, histogram_match=False))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert gen.preprocess(inp, tgt) is inp

    def test_per_channel_matching(self, color_pair):
        inp, tgt = color_pair
        gen = PhotomosaicGenerator(
            MosaicConfig(tile_size=8, color_histogram_match=True)
        )
        adjusted = gen.preprocess(inp, tgt)
        assert adjusted.shape == inp.shape
        for channel in range(3):
            expected = match_histogram(inp[..., channel], tgt[..., channel])
            assert (adjusted[..., channel] == expected).all()

    def test_per_channel_end_to_end(self, color_pair):
        inp, tgt = color_pair
        result = generate_photomosaic(
            inp, tgt, tile_size=8, metric="color", color_histogram_match=True
        )
        assert result.image.shape == inp.shape

    def test_mixed_ndim_warns_and_skips(self, color_pair, small_pair):
        inp_color, _ = color_pair
        _, tgt_gray = small_pair
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8))
        with pytest.warns(UserWarning, match="skipped"):
            assert gen.preprocess(inp_color, tgt_gray[:32, :32]) is inp_color


class TestArtifactCacheHooks:
    def test_second_run_hits_cache(self, small_pair):
        from repro.service.cache import ArtifactCache

        inp, tgt = small_pair
        cache = ArtifactCache()
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8), cache=cache)
        first = gen.generate(inp, tgt)
        second = gen.generate(inp, tgt)
        assert first.meta["cache"] == {
            "step1_input": "miss", "step1_target": "miss", "step2_matrix": "miss"
        }
        assert second.meta["cache"] == {
            "step1_input": "hit", "step1_target": "hit", "step2_matrix": "hit"
        }
        assert second.total_error == first.total_error

    def test_shared_target_hits_target_tiles(self, small_pair):
        from repro.imaging import standard_image
        from repro.service.cache import ArtifactCache

        inp, tgt = small_pair
        cache = ArtifactCache()
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8), cache=cache)
        gen.generate(inp, tgt)
        other = gen.generate(standard_image("peppers", 64), tgt)
        assert other.meta["cache"]["step1_target"] == "hit"
        assert other.meta["cache"]["step2_matrix"] == "miss"  # new input

    def test_cached_equals_uncached(self, small_pair):
        from repro.service.cache import ArtifactCache

        inp, tgt = small_pair
        config = MosaicConfig(tile_size=8, algorithm="optimization")
        cached = PhotomosaicGenerator(config, cache=ArtifactCache())
        plain = PhotomosaicGenerator(config)
        assert (
            cached.generate(inp, tgt).total_error
            == plain.generate(inp, tgt).total_error
        )

    def test_metric_change_misses_matrix_cache(self, small_pair):
        from repro.service.cache import ArtifactCache

        inp, tgt = small_pair
        cache = ArtifactCache()
        sad = PhotomosaicGenerator(MosaicConfig(tile_size=8, metric="sad"), cache=cache)
        ssd = PhotomosaicGenerator(MosaicConfig(tile_size=8, metric="ssd"), cache=cache)
        sad.generate(inp, tgt)
        result = ssd.generate(inp, tgt)
        assert result.meta["cache"]["step2_matrix"] == "miss"
        assert result.meta["cache"]["step1_input"] == "hit"  # tiles metric-free

    def test_no_cache_means_no_meta(self, small_pair):
        inp, tgt = small_pair
        result = PhotomosaicGenerator(MosaicConfig(tile_size=8)).generate(inp, tgt)
        assert "cache" not in result.meta

    def test_transforms_cached_with_orientations(self, small_pair):
        from repro.service.cache import ArtifactCache

        inp, tgt = small_pair
        cache = ArtifactCache()
        gen = PhotomosaicGenerator(
            MosaicConfig(tile_size=8, allow_transforms=True), cache=cache
        )
        first = gen.generate(inp, tgt)
        second = gen.generate(inp, tgt)
        assert second.meta["cache"]["step2_matrix"] == "hit"
        assert (second.meta["orientations"] == first.meta["orientations"]).all()
        assert second.total_error == first.total_error
