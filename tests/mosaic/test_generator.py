"""Tests for the end-to-end pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.matrix import error_matrix, total_error
from repro.exceptions import ValidationError
from repro.imaging.histogram import match_histogram
from repro.mosaic.config import MosaicConfig
from repro.mosaic.generator import PhotomosaicGenerator, generate_photomosaic
from repro.tiles.grid import TileGrid


class TestGenerate:
    @pytest.mark.parametrize("algorithm", ["optimization", "approximation", "parallel"])
    def test_all_algorithms_run(self, algorithm, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8, algorithm=algorithm)
        assert result.image.shape == inp.shape
        assert result.total_error >= 0

    def test_output_is_tile_permutation_of_adjusted_input(self, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8, algorithm="parallel")
        adjusted = match_histogram(inp, tgt)
        # Pixel multiset preserved: output tiles are a permutation of input tiles.
        assert (np.sort(result.image.ravel()) == np.sort(adjusted.ravel())).all()

    def test_total_error_consistent_with_matrix(self, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8, algorithm="optimization")
        grid = TileGrid.for_image(inp, 8)
        matrix = error_matrix(grid.split(match_histogram(inp, tgt)), grid.split(tgt))
        assert result.total_error == total_error(matrix, result.permutation)

    def test_optimization_lower_bounds_others(self, small_pair):
        inp, tgt = small_pair
        errors = {
            alg: generate_photomosaic(inp, tgt, tile_size=8, algorithm=alg).total_error
            for alg in ("optimization", "approximation", "parallel")
        }
        assert errors["optimization"] <= errors["approximation"]
        assert errors["optimization"] <= errors["parallel"]

    def test_rearrangement_improves_over_identity(self, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8, algorithm="parallel")
        grid = TileGrid.for_image(inp, 8)
        matrix = error_matrix(grid.split(match_histogram(inp, tgt)), grid.split(tgt))
        identity_error = total_error(matrix, np.arange(grid.tile_count))
        assert result.total_error <= identity_error

    def test_timings_recorded(self, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8)
        for phase in ("step1_tiling", "step2_error_matrix", "step3_rearrangement"):
            assert phase in result.timings.phases

    def test_trace_present_for_local_search(self, small_pair):
        inp, tgt = small_pair
        assert generate_photomosaic(inp, tgt, tile_size=8, algorithm="parallel").sweeps
        assert (
            generate_photomosaic(inp, tgt, tile_size=8, algorithm="optimization").sweeps
            is None
        )

    def test_shape_mismatch_rejected(self, small_pair):
        inp, _ = small_pair
        tgt = np.zeros((32, 32), dtype=np.uint8)
        with pytest.raises(ValidationError, match="identical shapes"):
            generate_photomosaic(inp, tgt, tile_size=8)

    def test_color_pipeline(self, rng):
        inp = rng.integers(0, 256, size=(32, 32, 3)).astype(np.uint8)
        tgt = rng.integers(0, 256, size=(32, 32, 3)).astype(np.uint8)
        result = generate_photomosaic(inp, tgt, tile_size=8, metric="color")
        assert result.image.shape == (32, 32, 3)
        # Histogram matching is gray-only: colour input must pass through.
        assert (np.sort(result.image.ravel()) == np.sort(inp.ravel())).all()

    @pytest.mark.parametrize("solver", ["scipy", "jv", "hungarian", "auction"])
    def test_all_exact_solvers_same_total(self, solver, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(
            inp, tgt, tile_size=8, algorithm="optimization", solver=solver
        )
        reference = generate_photomosaic(
            inp, tgt, tile_size=8, algorithm="optimization", solver="scipy"
        )
        assert result.total_error == reference.total_error

    def test_histogram_match_flag(self, small_pair):
        inp, tgt = small_pair
        on = generate_photomosaic(inp, tgt, tile_size=8, histogram_match=True)
        off = generate_photomosaic(inp, tgt, tile_size=8, histogram_match=False)
        # Without adjustment the pixel multiset is the raw input's.
        assert (np.sort(off.image.ravel()) == np.sort(inp.ravel())).all()
        assert on.total_error != off.total_error


class TestPyramidAlgorithm:
    def test_runs_end_to_end(self, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8, algorithm="pyramid")
        assert result.image.shape == inp.shape
        assert result.meta["pyramid_factor"] == 2
        assert result.meta["coarse_total"] > 0

    def test_quality_between_optimal_and_identity(self, small_pair):
        inp, tgt = small_pair
        pyramid = generate_photomosaic(inp, tgt, tile_size=8, algorithm="pyramid")
        optimal = generate_photomosaic(
            inp, tgt, tile_size=8, algorithm="optimization"
        )
        assert pyramid.total_error >= optimal.total_error
        assert pyramid.total_error <= 1.1 * optimal.total_error

    def test_custom_factor(self, small_pair):
        inp, tgt = small_pair
        result = generate_photomosaic(
            inp, tgt, tile_size=8, algorithm="pyramid", pyramid_factor=4
        )
        assert result.meta["pyramid_factor"] == 4

    def test_rearrange_stage_rejects_pyramid(self, small_error_matrix):
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8, algorithm="pyramid"))
        with pytest.raises(ValidationError, match="tile stacks"):
            gen.rearrange(small_error_matrix)

    def test_pyramid_with_transforms_rejected(self):
        with pytest.raises(ValidationError, match="cannot combine"):
            MosaicConfig(algorithm="pyramid", allow_transforms=True)


class TestStagedAPI:
    def test_build_error_matrix(self, small_pair):
        inp, tgt = small_pair
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8))
        grid, matrix = gen.build_error_matrix(inp, tgt)
        assert grid.tile_count == 64
        assert matrix.shape == (64, 64)

    def test_rearrange_stage(self, small_error_matrix):
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8, algorithm="parallel"))
        perm, trace, meta = gen.rearrange(small_error_matrix)
        assert perm.shape == (64,)
        assert trace is not None
        assert "kernel_launches" in meta

    def test_preprocess_matches_histograms(self, small_pair):
        inp, tgt = small_pair
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8))
        adjusted = gen.preprocess(inp, tgt)
        assert (adjusted == match_histogram(inp, tgt)).all()

    def test_preprocess_disabled(self, small_pair):
        inp, tgt = small_pair
        gen = PhotomosaicGenerator(MosaicConfig(tile_size=8, histogram_match=False))
        assert gen.preprocess(inp, tgt) is inp
