"""Tests for coarse-to-fine rearrangement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.matrix import error_matrix, total_error
from repro.exceptions import ValidationError
from repro.localsearch import local_search_parallel
from repro.mosaic.pyramid import (
    coarse_to_fine_rearrange,
    expand_coarse_permutation,
)
from repro.tiles.grid import TileGrid
from repro.tiles.permutation import identity_permutation, random_permutation


class TestExpansion:
    def test_identity_expands_to_identity(self):
        coarse_grid = TileGrid(64, 64, 16)  # 4x4 coarse blocks
        fine = expand_coarse_permutation(
            identity_permutation(16), coarse_grid, factor=2
        )
        assert (fine == np.arange(64)).all()

    def test_expansion_is_permutation(self):
        coarse_grid = TileGrid(64, 64, 16)
        for seed in range(4):
            coarse = random_permutation(16, seed=seed)
            fine = expand_coarse_permutation(coarse, coarse_grid, factor=2)
            assert (np.sort(fine) == np.arange(64)).all()

    def test_block_interiors_preserved(self):
        """Tiles of one coarse block stay together at the same offsets."""
        coarse_grid = TileGrid(64, 64, 32)  # 2x2 coarse blocks
        coarse = np.array([1, 0, 2, 3], dtype=np.intp)  # swap top two blocks
        fine = expand_coarse_permutation(coarse, coarse_grid, factor=2)
        # Fine grid is 4x4 (cols=4).  Coarse slot 0 (rows 0-1, cols 0-1)
        # receives coarse block 1 (rows 0-1, cols 2-3).
        assert fine[0] == 2  # (0,0) <- (0,2)
        assert fine[1] == 3
        assert fine[4] == 6  # (1,0) <- (1,2)
        # Bottom half untouched.
        assert (fine[8:] == np.arange(8, 16)).all()

    def test_rejects_wrong_length(self):
        coarse_grid = TileGrid(64, 64, 16)
        with pytest.raises(ValidationError, match="length"):
            expand_coarse_permutation(identity_permutation(9), coarse_grid, 2)


class TestCoarseToFine:
    @pytest.fixture()
    def setup(self, small_pair):
        inp, tgt = small_pair
        grid = TileGrid.for_image(inp, 8)  # 8x8 = 64 tiles
        from repro.imaging.histogram import match_histogram

        adjusted = match_histogram(inp, tgt)
        return grid, grid.split(adjusted), grid.split(tgt)

    def test_produces_valid_permutation(self, setup):
        grid, tiles_in, tiles_tg = setup
        result = coarse_to_fine_rearrange(tiles_in, tiles_tg, grid, factor=2)
        assert (np.sort(result.permutation) == np.arange(64)).all()

    def test_fine_search_improves_warm_start(self, setup):
        grid, tiles_in, tiles_tg = setup
        result = coarse_to_fine_rearrange(tiles_in, tiles_tg, grid, factor=2)
        assert result.total <= result.warm_start_total

    def test_total_consistent(self, setup):
        grid, tiles_in, tiles_tg = setup
        matrix = error_matrix(tiles_in, tiles_tg)
        result = coarse_to_fine_rearrange(
            tiles_in, tiles_tg, grid, factor=2, fine_matrix=matrix
        )
        assert result.total == total_error(matrix, result.permutation)

    def test_quality_close_to_flat_search(self, setup):
        grid, tiles_in, tiles_tg = setup
        matrix = error_matrix(tiles_in, tiles_tg)
        flat = local_search_parallel(matrix)
        pyramid = coarse_to_fine_rearrange(
            tiles_in, tiles_tg, grid, factor=2, fine_matrix=matrix
        )
        assert pyramid.total <= 1.05 * flat.total

    def test_warm_start_reduces_fine_sweeps(self, setup):
        grid, tiles_in, tiles_tg = setup
        matrix = error_matrix(tiles_in, tiles_tg)
        cold = local_search_parallel(matrix)
        pyramid = coarse_to_fine_rearrange(
            tiles_in, tiles_tg, grid, factor=2, fine_matrix=matrix
        )
        assert pyramid.fine_sweeps <= cold.sweeps

    def test_factor_must_divide(self, setup):
        grid, tiles_in, tiles_tg = setup
        with pytest.raises(ValidationError, match="does not divide"):
            coarse_to_fine_rearrange(tiles_in, tiles_tg, grid, factor=3)

    def test_factor_one_equals_exact_plus_polish(self, setup):
        """factor=1: the 'coarse' stage is the exact fine assignment, so
        the fine search has nothing to improve."""
        grid, tiles_in, tiles_tg = setup
        matrix = error_matrix(tiles_in, tiles_tg)
        result = coarse_to_fine_rearrange(
            tiles_in, tiles_tg, grid, factor=1, fine_matrix=matrix
        )
        from repro.assignment import get_solver

        assert result.total == get_solver("scipy").solve(matrix).total
        assert result.fine_sweeps == 1
