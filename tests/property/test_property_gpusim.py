"""Property-based differential tests: virtual-GPU kernels vs host code."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cost.matrix import error_matrix
from repro.gpusim.kernels.error_kernel import error_matrix_gpu
from repro.gpusim.kernels.swap_kernel import run_swap_class_on_device
from repro.localsearch.parallel import _commit_class


@st.composite
def stack_pairs(draw):
    s = draw(st.integers(min_value=1, max_value=8))
    m = draw(st.sampled_from([1, 2, 4]))
    elements = st.integers(min_value=0, max_value=255)
    a = draw(arrays(dtype=np.uint8, shape=(s, m, m), elements=elements))
    b = draw(arrays(dtype=np.uint8, shape=(s, m, m), elements=elements))
    return a, b


@given(stack_pairs(), st.sampled_from([1, 3, 32]))
@settings(max_examples=30, deadline=None)
def test_error_kernel_bit_equal_to_host(pair, block_dim):
    a, b = pair
    assert (error_matrix_gpu(a, b, block_dim=block_dim) == error_matrix(a, b)).all()


@st.composite
def class_instances(draw):
    """A matrix plus one disjoint pair class over its indices."""
    n = draw(st.integers(min_value=2, max_value=16))
    m = draw(
        arrays(
            dtype=np.int64,
            shape=(n, n),
            elements=st.integers(min_value=0, max_value=10_000),
        )
    )
    order = draw(st.permutations(list(range(n))))
    pair_count = draw(st.integers(min_value=0, max_value=n // 2))
    us = np.array(order[:pair_count], dtype=np.intp)
    vs = np.array(order[pair_count : 2 * pair_count], dtype=np.intp)
    return m, us, vs


@given(class_instances())
@settings(max_examples=40, deadline=None)
def test_swap_kernel_matches_vectorized_commit(instance):
    m, us, vs = instance
    n = m.shape[0]
    perm_gpu = np.arange(n, dtype=np.intp)
    perm_vec = np.arange(n, dtype=np.intp)
    swaps_gpu = run_swap_class_on_device(m, perm_gpu, us, vs)
    swaps_vec = _commit_class(m, perm_vec, us, vs)
    assert swaps_gpu == swaps_vec
    assert (perm_gpu == perm_vec).all()


@given(class_instances())
@settings(max_examples=30, deadline=None)
def test_swap_kernel_never_increases_error(instance):
    m, us, vs = instance
    n = m.shape[0]
    perm = np.arange(n, dtype=np.intp)
    before = int(m[perm, np.arange(n)].sum())
    run_swap_class_on_device(m, perm, us, vs)
    after = int(m[perm, np.arange(n)].sum())
    assert after <= before
