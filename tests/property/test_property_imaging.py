"""Property-based tests for the imaging substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.imaging.histogram import histogram, histogram_equalize, match_histogram
from repro.imaging.io_pgm import read_netpbm, write_pgm
from repro.imaging.io_png import read_png, write_png

gray_images = arrays(
    dtype=np.uint8,
    shape=st.tuples(
        st.integers(min_value=1, max_value=24), st.integers(min_value=1, max_value=24)
    ),
    elements=st.integers(min_value=0, max_value=255),
)

color_images = arrays(
    dtype=np.uint8,
    shape=st.tuples(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
        st.just(3),
    ),
    elements=st.integers(min_value=0, max_value=255),
)


def _roundtrip(img, writer, reader, suffix):
    """Write with ``writer`` to a temp file, read back with ``reader``."""
    import os
    import tempfile

    fd, path = tempfile.mkstemp(suffix=suffix)
    os.close(fd)
    try:
        writer(path, img)
        return reader(path)
    finally:
        os.unlink(path)


@given(gray_images)
@settings(max_examples=40, deadline=None)
def test_png_gray_roundtrip(img):
    assert (_roundtrip(img, write_png, read_png, ".png") == img).all()


@given(color_images)
@settings(max_examples=30, deadline=None)
def test_png_color_roundtrip(img):
    assert (_roundtrip(img, write_png, read_png, ".png") == img).all()


@given(gray_images)
@settings(max_examples=40, deadline=None)
def test_pgm_roundtrip(img):
    assert (_roundtrip(img, write_pgm, read_netpbm, ".pgm") == img).all()


@given(gray_images)
@settings(max_examples=40, deadline=None)
def test_histogram_mass_conserved(img):
    assert histogram(img).sum() == img.size


@given(gray_images)
@settings(max_examples=40, deadline=None)
def test_equalize_is_monotone_remap(img):
    out = histogram_equalize(img)
    order = np.argsort(img.ravel(), kind="stable")
    assert (np.diff(out.ravel()[order].astype(int)) >= 0).all()


@given(gray_images, gray_images)
@settings(max_examples=40, deadline=None)
def test_match_histogram_output_levels_subset_of_reference(img, ref):
    """Specification can only emit intensity levels the reference has."""
    matched = match_histogram(img, ref)
    assert set(np.unique(matched)) <= set(np.unique(ref))


@given(gray_images)
@settings(max_examples=30, deadline=None)
def test_match_histogram_idempotent(img):
    once = match_histogram(img, img)
    twice = match_histogram(once, img)
    assert (once == twice).all()
