"""Property-based tests for the sparse Step-2 machinery.

Four invariants the shortlister must hold on *any* input, not just the
standard images: every row carries exactly ``top_k`` unique in-range
candidates, sketch distances are invariant under tile permutation,
sparse matrices round-trip through densification, and the seeded
k-means shortlister is deterministic across restarts.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cost import error_matrix, sparse_error_matrix
from repro.cost.sketch import SKETCH_KINDS, sketch_features
from repro.cost.sparse import SparseErrorMatrix
from repro.library.shortlist import kmeans

#: Square tile stacks: (S, M, M) uint8 with S a perfect square (the
#: builder requires a square grid's worth of tiles).
tile_counts = st.sampled_from([4, 9, 16, 25])


@st.composite
def tile_stack_pairs(draw):
    s = draw(st.shared(tile_counts, key="s"))
    stack = arrays(
        dtype=np.uint8,
        shape=(s, 4, 4),
        elements=st.integers(min_value=0, max_value=255),
    )
    return draw(stack), draw(stack)


@st.composite
def top_ks(draw):
    s = draw(st.shared(tile_counts, key="s"))
    return draw(st.integers(min_value=1, max_value=s))


@given(tile_stack_pairs(), top_ks(), st.sampled_from(SKETCH_KINDS))
@settings(max_examples=40, deadline=None)
def test_every_row_has_exactly_top_k_unique_candidates(pair, top_k, sketch):
    tiles_in, tiles_tg = pair
    sparse = sparse_error_matrix(
        tiles_in, tiles_tg, top_k=top_k, sketch=sketch, seed=7
    )
    s = tiles_in.shape[0]
    assert sparse.indices.shape == (s, top_k)
    for row in sparse.indices:
        unique = np.unique(row)
        assert unique.size == top_k
        assert unique.min() >= 0 and unique.max() < s


@given(tile_stack_pairs(), top_ks())
@settings(max_examples=30, deadline=None)
def test_sparse_costs_are_exact_dense_entries(pair, top_k):
    """Whatever pairs get shortlisted, their costs are the dense values."""
    tiles_in, tiles_tg = pair
    dense = error_matrix(tiles_in, tiles_tg)
    sparse = sparse_error_matrix(tiles_in, tiles_tg, top_k=top_k, seed=3)
    rows = np.repeat(np.arange(sparse.size), sparse.top_k)
    np.testing.assert_array_equal(
        sparse.costs.ravel(), dense[rows, sparse.indices.ravel()]
    )


@given(
    arrays(
        dtype=np.uint8,
        shape=st.tuples(
            st.integers(min_value=2, max_value=20),
            st.just(4),
            st.just(4),
        ),
        elements=st.integers(min_value=0, max_value=255),
    ),
    st.sampled_from(SKETCH_KINDS),
    st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_sketch_distances_are_permutation_invariant(tiles, kind, rnd):
    """Permuting the tile stack permutes the sketches identically, so
    every pairwise sketch distance is preserved."""
    from repro.cost.base import get_metric

    features = get_metric("sad").prepare(tiles)
    order = np.array(
        rnd.sample(range(tiles.shape[0]), tiles.shape[0]), dtype=np.int64
    )
    direct = sketch_features(features, kind)
    permuted = sketch_features(features[order], kind, basis_features=features)
    if kind != "pca":
        # Non-PCA sketches are per-tile functions: permuting inputs
        # permutes outputs exactly.
        np.testing.assert_allclose(permuted, direct[order])
    d_direct = np.linalg.norm(direct[:, None] - direct[None, :], axis=-1)
    d_perm = np.linalg.norm(permuted[:, None] - permuted[None, :], axis=-1)
    np.testing.assert_allclose(d_perm, d_direct[np.ix_(order, order)], atol=1e-6)


@given(tile_stack_pairs(), top_ks())
@settings(max_examples=30, deadline=None)
def test_sparse_to_dense_round_trips(pair, top_k):
    """from_dense(to_dense) reproduces indices (as sets) and costs, and
    a complete matrix round-trips to the exact dense matrix."""
    tiles_in, tiles_tg = pair
    sparse = sparse_error_matrix(tiles_in, tiles_tg, top_k=top_k, seed=9)
    dense = sparse.to_dense()
    back = SparseErrorMatrix.from_dense(dense, top_k)
    # The sentinel is strictly worse than every real cost, so the top_k
    # cheapest entries of each densified row are the original candidates.
    for u in range(sparse.size):
        assert set(back.indices[u]) == set(sparse.indices[u])
        np.testing.assert_array_equal(
            np.sort(back.costs[u]), np.sort(sparse.costs[u])
        )
    if sparse.complete:
        np.testing.assert_array_equal(dense, error_matrix(tiles_in, tiles_tg))


@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_value=3, max_value=24),
            st.integers(min_value=1, max_value=6),
        ),
        elements=st.floats(min_value=0.0, max_value=255.0, width=32),
    ),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_seeded_kmeans_deterministic_across_restarts(points, k, seed):
    k = min(k, points.shape[0])
    first = kmeans(points, k, seed=seed)
    second = kmeans(points, k, seed=seed)
    np.testing.assert_array_equal(first[0], second[0])
    np.testing.assert_array_equal(first[1], second[1])


@given(tile_stack_pairs(), top_ks(), st.sampled_from(SKETCH_KINDS))
@settings(max_examples=25, deadline=None)
def test_seeded_builder_deterministic_across_restarts(pair, top_k, sketch):
    tiles_in, tiles_tg = pair
    runs = [
        sparse_error_matrix(
            tiles_in, tiles_tg, top_k=top_k, sketch=sketch, seed=42
        )
        for _ in range(2)
    ]
    np.testing.assert_array_equal(runs[0].indices, runs[1].indices)
    np.testing.assert_array_equal(runs[0].costs, runs[1].costs)
