"""Property-based tests for cache keys and disk-store payloads.

Two families of invariants:

* **round-trips** — any tile-grid/error-matrix-shaped payload (arbitrary
  dtype, shape, values, including NaNs and negative zeros) survives the
  npz encode/decode and a full disk-store put/get **bit-exactly**;
* **key stability** — artifact keys are pure functions of their inputs,
  and :func:`~repro.service.cache.config_fingerprint` is invariant to
  the insertion order of a :class:`~repro.mosaic.config.MosaicConfig`
  mapping (dicts with the same items always fingerprint identically).
"""

from __future__ import annotations

import tempfile
from dataclasses import asdict

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays, from_dtype

from repro.mosaic.config import MosaicConfig
from repro.service.cache import (
    config_fingerprint,
    error_matrix_key,
    tile_grid_key,
)
from repro.service.diskcache import DiskCacheStore, decode_payload, encode_payload

# Dtypes the pipeline plausibly caches: every integer width, both float
# precisions used by the cost metrics, plus bools and complex for safety.
DTYPES = st.sampled_from(
    [
        np.uint8,
        np.int8,
        np.uint16,
        np.int16,
        np.int32,
        np.int64,
        np.float16,
        np.float32,
        np.float64,
        np.complex64,
        np.bool_,
    ]
)

SHAPES = st.lists(st.integers(0, 6), min_size=0, max_size=3).map(tuple)


@st.composite
def payload_arrays(draw):
    dtype = np.dtype(draw(DTYPES))
    shape = draw(SHAPES)
    return draw(arrays(dtype=dtype, shape=shape, elements=from_dtype(dtype)))


def _bit_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bit-exact equality: dtype, shape and raw bytes (NaN-safe)."""
    return a.dtype == b.dtype and a.shape == b.shape and a.tobytes() == b.tobytes()


class TestPayloadRoundTrip:
    @given(payload_arrays())
    @settings(max_examples=60, deadline=None)
    def test_codec_round_trips_arrays_bit_exact(self, arr):
        data, layout = encode_payload(arr)
        assert _bit_equal(decode_payload(data, layout), arr)

    @given(payload_arrays(), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_codec_round_trips_matrix_tuples(self, matrix, with_codes):
        codes = np.zeros(matrix.shape, dtype=np.intp) if with_codes else None
        data, layout = encode_payload((matrix, codes))
        out_matrix, out_codes = decode_payload(data, layout)
        assert _bit_equal(out_matrix, matrix)
        if with_codes:
            assert _bit_equal(out_codes, codes)
        else:
            assert out_codes is None

    @given(payload_arrays(), st.integers(0, 2**32 - 1))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_store_round_trips_through_disk(self, arr, key_salt):
        with tempfile.TemporaryDirectory() as root:
            store = DiskCacheStore(root)
            key = f"tiles/prop{key_salt:08x}/t8"
            store.put(key, arr)
            assert _bit_equal(store.get(key), arr)


class TestKeyStability:
    @given(st.text(min_size=1, max_size=32), st.integers(1, 128))
    @settings(max_examples=60)
    def test_tile_grid_key_is_a_pure_function(self, fingerprint, tile_size):
        assert tile_grid_key(fingerprint, tile_size) == tile_grid_key(
            fingerprint, tile_size
        )

    @given(
        st.text(min_size=1, max_size=16),
        st.text(min_size=1, max_size=16),
        st.integers(1, 64),
        st.sampled_from(["sad", "ssd", "mse"]),
        st.booleans(),
    )
    @settings(max_examples=60)
    def test_error_matrix_key_separates_inputs(
        self, fp_in, fp_tgt, tile, metric, transforms
    ):
        key = error_matrix_key(fp_in, fp_tgt, tile, metric, transforms)
        flipped = error_matrix_key(fp_in, fp_tgt, tile, metric, not transforms)
        assert key != flipped
        assert key == error_matrix_key(fp_in, fp_tgt, tile, metric, transforms)


class TestConfigFingerprint:
    @given(st.permutations(sorted(asdict(MosaicConfig()).items())))
    @settings(max_examples=60)
    def test_invariant_to_mosaic_config_dict_ordering(self, items):
        shuffled = dict(items)
        canonical = asdict(MosaicConfig())
        assert shuffled == canonical  # same items, possibly different order
        assert config_fingerprint(shuffled) == config_fingerprint(canonical)

    @given(st.permutations(sorted(asdict(MosaicConfig()).items())))
    @settings(max_examples=30)
    def test_dataclass_and_mapping_agree(self, items):
        assert config_fingerprint(dict(items)) == config_fingerprint(
            MosaicConfig()
        )

    @given(
        st.integers(1, 64),
        st.sampled_from(["sad", "ssd"]),
        st.sampled_from(["parallel", "approximation", "optimization"]),
    )
    @settings(max_examples=40)
    def test_sensitive_to_values(self, tile_size, metric, algorithm):
        base = MosaicConfig()
        varied = MosaicConfig(
            tile_size=tile_size, metric=metric, algorithm=algorithm
        )
        if asdict(varied) != asdict(base):
            assert config_fingerprint(varied) != config_fingerprint(base)
        else:
            assert config_fingerprint(varied) == config_fingerprint(base)
