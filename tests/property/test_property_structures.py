"""Property-based tests for transforms and pyramid expansion."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tiles.grid import TileGrid
from repro.tiles.permutation import random_permutation
from repro.tiles.transforms import (
    TRANSFORM_COUNT,
    apply_transform,
    compose_transforms,
    invert_transform,
)
from repro.mosaic.pyramid import expand_coarse_permutation

square_tiles = arrays(
    dtype=np.uint8,
    shape=st.tuples(
        st.shared(st.integers(min_value=1, max_value=8), key="m"),
        st.shared(st.integers(min_value=1, max_value=8), key="m"),
    ),
    elements=st.integers(min_value=0, max_value=255),
)

codes = st.integers(min_value=0, max_value=TRANSFORM_COUNT - 1)


@given(square_tiles, codes)
@settings(max_examples=50, deadline=None)
def test_transform_preserves_pixel_multiset(tile, code):
    out = apply_transform(tile, code)
    assert (np.sort(out.ravel()) == np.sort(tile.ravel())).all()


@given(square_tiles, codes, codes)
@settings(max_examples=50, deadline=None)
def test_composition_matches_sequential(tile, a, b):
    direct = apply_transform(apply_transform(tile, a), b)
    composed = apply_transform(tile, compose_transforms(a, b))
    assert (direct == composed).all()


@given(square_tiles, codes)
@settings(max_examples=50, deadline=None)
def test_inverse_restores(tile, code):
    assert (
        apply_transform(apply_transform(tile, code), invert_transform(code)) == tile
    ).all()


@given(codes, codes, codes)
@settings(max_examples=50, deadline=None)
def test_group_associativity(a, b, c):
    left = compose_transforms(compose_transforms(a, b), c)
    right = compose_transforms(a, compose_transforms(b, c))
    assert left == right


@st.composite
def pyramid_instances(draw):
    factor = draw(st.sampled_from([1, 2, 3]))
    rows = draw(st.integers(min_value=1, max_value=4))
    cols = draw(st.integers(min_value=1, max_value=4))
    tile = 4
    coarse_grid = TileGrid(rows * factor * tile, cols * factor * tile, factor * tile)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    coarse = random_permutation(rows * cols, seed=seed)
    return coarse, coarse_grid, factor


@given(pyramid_instances())
@settings(max_examples=50, deadline=None)
def test_pyramid_expansion_is_permutation(instance):
    coarse, coarse_grid, factor = instance
    fine = expand_coarse_permutation(coarse, coarse_grid, factor)
    n = coarse.shape[0] * factor * factor
    assert (np.sort(fine) == np.arange(n)).all()


@given(pyramid_instances())
@settings(max_examples=30, deadline=None)
def test_pyramid_expansion_preserves_blocks(instance):
    """All fine tiles of one coarse block land inside one coarse slot."""
    coarse, coarse_grid, factor = instance
    fine = expand_coarse_permutation(coarse, coarse_grid, factor)
    cols_c = coarse_grid.cols
    cols_f = cols_c * factor

    def coarse_cell_of_fine(index: int) -> tuple[int, int]:
        r, c = divmod(int(index), cols_f)
        return r // factor, c // factor

    for slot in range(coarse.shape[0]):
        slot_cell = divmod(slot, cols_c)
        block = int(coarse[slot])
        block_cell = divmod(block, cols_c)
        # Every fine position of this slot must hold a tile from `block`.
        slot_r, slot_c = slot_cell
        for dy in range(factor):
            for dx in range(factor):
                fine_pos = (slot_r * factor + dy) * cols_f + slot_c * factor + dx
                assert coarse_cell_of_fine(fine[fine_pos]) == block_cell
