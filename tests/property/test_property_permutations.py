"""Property-based tests for permutation algebra."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiles.permutation import (
    apply_permutation,
    compose,
    identity_permutation,
    invert,
    permutation_from_pairs,
    random_permutation,
)

perm_sizes = st.integers(min_value=1, max_value=64)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def permutations(draw, max_size: int = 64):
    size = draw(st.integers(min_value=1, max_value=max_size))
    seed = draw(seeds)
    return random_permutation(size, seed=seed)


@given(permutations())
def test_invert_is_involutive(p):
    assert (invert(invert(p)) == p).all()


@given(permutations())
def test_inverse_composes_to_identity(p):
    n = p.shape[0]
    assert (compose(p, invert(p)) == identity_permutation(n)).all()
    assert (compose(invert(p), p) == identity_permutation(n)).all()


@given(st.data())
def test_compose_associative(data):
    size = data.draw(perm_sizes)
    a = random_permutation(size, seed=data.draw(seeds))
    b = random_permutation(size, seed=data.draw(seeds))
    c = random_permutation(size, seed=data.draw(seeds))
    assert (compose(compose(a, b), c) == compose(a, compose(b, c))).all()


@given(st.data())
def test_apply_respects_composition(data):
    size = data.draw(perm_sizes)
    a = random_permutation(size, seed=data.draw(seeds))
    b = random_permutation(size, seed=data.draw(seeds))
    items = np.arange(1000, 1000 + size)
    assert (
        apply_permutation(apply_permutation(items, a), b)
        == apply_permutation(items, compose(a, b))
    ).all()


@given(permutations())
def test_from_pairs_reconstructs(p):
    n = p.shape[0]
    pairs = [(int(p[v]), v) for v in range(n)]
    assert (permutation_from_pairs(pairs, n) == p).all()


@given(permutations())
@settings(max_examples=30)
def test_apply_preserves_multiset(p):
    items = np.arange(p.shape[0]) ** 2
    out = apply_permutation(items, p)
    assert (np.sort(out) == np.sort(items)).all()
