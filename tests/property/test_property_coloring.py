"""Property-based tests for the circle-method edge colouring."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.round_robin import edge_coloring_complete
from repro.coloring.verify import verify_color_classes


@given(st.integers(min_value=1, max_value=120), st.sampled_from(["paper", "round"]))
@settings(max_examples=60)
def test_always_valid_coloring(n, order):
    """Theorem 1 invariants hold for every n and both orderings."""
    classes = edge_coloring_complete(n, order=order)
    verify_color_classes(classes, n)


@given(st.integers(min_value=2, max_value=120))
@settings(max_examples=60)
def test_class_count_matches_theorem(n):
    classes = edge_coloring_complete(n)
    nonempty = sum(1 for c in classes if c)
    if n % 2 == 0:
        assert nonempty == n - 1
    else:
        assert nonempty == n


@given(st.integers(min_value=2, max_value=80))
@settings(max_examples=40)
def test_every_vertex_appears_in_every_full_class(n):
    """For even n each class is a perfect matching: all vertices used."""
    classes = edge_coloring_complete(n)
    for pairs in classes:
        if not pairs:
            continue
        used = {v for pair in pairs for v in pair}
        if n % 2 == 0:
            assert used == set(range(n))
        else:
            assert len(used) == n - 1  # one bye vertex
