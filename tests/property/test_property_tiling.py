"""Property-based tests for tiling and the cost model."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cost.matrix import error_matrix, total_error
from repro.cost.sad import SADMetric
from repro.tiles.grid import TileGrid
from repro.tiles.permutation import random_permutation


@st.composite
def image_and_tile_size(draw):
    tile = draw(st.sampled_from([1, 2, 4, 8]))
    tiles_per_side = draw(st.integers(min_value=1, max_value=6))
    n = tile * tiles_per_side
    img = draw(
        arrays(
            dtype=np.uint8,
            shape=(n, n),
            elements=st.integers(min_value=0, max_value=255),
        )
    )
    return img, tile


@given(image_and_tile_size())
@settings(max_examples=50, deadline=None)
def test_split_assemble_identity(data):
    img, tile = data
    grid = TileGrid.for_image(img, tile)
    assert (grid.assemble(grid.split(img)) == img).all()


@given(image_and_tile_size(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_rearrange_preserves_pixel_multiset(data, seed):
    img, tile = data
    grid = TileGrid.for_image(img, tile)
    perm = random_permutation(grid.tile_count, seed=seed)
    out = grid.rearrange(img, perm)
    assert (np.sort(out.ravel()) == np.sort(img.ravel())).all()


@st.composite
def tile_stack_pairs(draw):
    s = draw(st.integers(min_value=1, max_value=10))
    m = draw(st.sampled_from([1, 2, 4]))
    elements = st.integers(min_value=0, max_value=255)
    a = draw(arrays(dtype=np.uint8, shape=(s, m, m), elements=elements))
    b = draw(arrays(dtype=np.uint8, shape=(s, m, m), elements=elements))
    return a, b


@given(tile_stack_pairs())
@settings(max_examples=50, deadline=None)
def test_error_matrix_nonnegative_and_symmetric_on_swap(pair):
    a, b = pair
    m_ab = error_matrix(a, b)
    m_ba = error_matrix(b, a)
    assert (m_ab >= 0).all()
    # SAD is symmetric in its two tiles: E_ab[u, v] == E_ba[v, u].
    assert (m_ab == m_ba.T).all()


@given(tile_stack_pairs())
@settings(max_examples=50, deadline=None)
def test_error_matrix_entries_match_single_tile_metric(pair):
    a, b = pair
    m = error_matrix(a, b)
    metric = SADMetric()
    s = a.shape[0]
    rng = np.random.default_rng(0)
    for _ in range(min(5, s * s)):
        u = int(rng.integers(0, s))
        v = int(rng.integers(0, s))
        assert m[u, v] == metric.tile_error(a[u], b[v])


@given(tile_stack_pairs(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_total_error_of_identity_on_equal_stacks_is_zero(pair, seed):
    a, _ = pair
    m = error_matrix(a, a)
    assert total_error(m, np.arange(a.shape[0])) == 0
    # And any other permutation cannot be negative.
    perm = random_permutation(a.shape[0], seed=seed)
    assert total_error(m, perm) >= 0
