"""Property-based differential tests for the assignment solvers."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.assignment import get_solver, verify_optimality_certificate

matrices = arrays(
    dtype=np.int64,
    shape=st.tuples(
        st.shared(st.integers(min_value=1, max_value=14), key="n"),
        st.shared(st.integers(min_value=1, max_value=14), key="n"),
    ),
    elements=st.integers(min_value=0, max_value=10_000),
)


@given(matrices)
@settings(max_examples=60, deadline=None)
def test_all_exact_solvers_agree(m):
    reference = get_solver("scipy").solve(m).total
    for name in ("hungarian", "jv", "auction"):
        assert get_solver(name).solve(m).total == reference


@given(matrices)
@settings(max_examples=40, deadline=None)
def test_duals_always_certify(m):
    for name in ("hungarian", "jv"):
        result = get_solver(name).solve(m)
        assert verify_optimality_certificate(result, m)


@given(matrices)
@settings(max_examples=40, deadline=None)
def test_greedy_between_optimal_and_worst(m):
    n = m.shape[0]
    greedy = get_solver("greedy").solve(m).total
    optimal = get_solver("scipy").solve(m).total
    worst = int(m.max()) * n
    assert optimal <= greedy <= worst


@given(matrices, st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_constant_shift_invariance(m, shift):
    """Adding a constant to every entry shifts the optimum by n*shift and
    preserves (an) optimal permutation's cost structure."""
    n = m.shape[0]
    base = get_solver("jv").solve(m)
    shifted = get_solver("jv").solve(m + shift)
    assert shifted.total == base.total + n * shift


@given(matrices)
@settings(max_examples=30, deadline=None)
def test_row_permutation_equivariance(m):
    """Permuting input rows permutes the solution without changing cost."""
    rng = np.random.default_rng(0)
    n = m.shape[0]
    sigma = rng.permutation(n)
    base = get_solver("scipy").solve(m).total
    assert get_solver("scipy").solve(m[sigma]).total == base
