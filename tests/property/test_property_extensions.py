"""Property-based tests for the extension modules."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
from scipy.optimize import linear_sum_assignment

from repro.assignment.bruteforce import BruteForceSolver
from repro.assignment.rectangular import solve_rectangular
from repro.cost.matrix import total_error
from repro.localsearch.annealing import simulated_annealing
from repro.localsearch.windowed import local_search_windowed

tiny_matrices = arrays(
    dtype=np.int64,
    shape=st.tuples(
        st.shared(st.integers(min_value=1, max_value=6), key="tn"),
        st.shared(st.integers(min_value=1, max_value=6), key="tn"),
    ),
    elements=st.integers(min_value=0, max_value=500),
)

matrices = arrays(
    dtype=np.int64,
    shape=st.tuples(
        st.shared(st.integers(min_value=1, max_value=16), key="n"),
        st.shared(st.integers(min_value=1, max_value=16), key="n"),
    ),
    elements=st.integers(min_value=0, max_value=5000),
)


@given(tiny_matrices)
@settings(max_examples=30, deadline=None)
def test_bruteforce_is_true_lower_bound(m):
    """The S! oracle lower-bounds every heuristic's result."""
    oracle = BruteForceSolver().solve(m).total
    lums = np.arange(m.shape[0], dtype=np.float64)
    assert simulated_annealing(m, seed=0).total >= oracle
    assert local_search_windowed(m, lums, window=3).total >= oracle


@given(matrices, st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_annealing_valid_and_bounded(m, seed):
    n = m.shape[0]
    result = simulated_annealing(m, seed=seed, polish=False)
    assert (np.sort(result.permutation) == np.arange(n)).all()
    assert result.total == total_error(m, result.permutation)
    assert result.total <= total_error(m, np.arange(n))  # never above start


@given(matrices, st.integers(min_value=1, max_value=20))
@settings(max_examples=25, deadline=None)
def test_windowed_valid_and_monotone(m, window):
    n = m.shape[0]
    lums = (m.sum(axis=1) % 251).astype(np.float64)  # arbitrary but fixed
    result = local_search_windowed(m, lums, window=window)
    assert (np.sort(result.permutation) == np.arange(n)).all()
    totals = result.trace.totals
    assert all(a >= b for a, b in zip(totals, totals[1:]))
    assert result.trace.swap_counts[-1] == 0


@st.composite
def rect_costs(draw):
    rows = draw(st.integers(min_value=1, max_value=12))
    cols = draw(st.integers(min_value=1, max_value=rows))
    return draw(
        arrays(
            dtype=np.int64,
            shape=(rows, cols),
            elements=st.integers(min_value=0, max_value=1000),
        )
    )


@given(rect_costs())
@settings(max_examples=40, deadline=None)
def test_rectangular_matches_scipy(costs):
    choice, total = solve_rectangular(costs)
    rows, cols = linear_sum_assignment(costs)
    assert total == int(costs[rows, cols].sum())
    assert len(np.unique(choice)) == choice.size
    assert total == int(costs[choice, np.arange(costs.shape[1])].sum())


@given(rect_costs(), st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_rectangular_shift_invariance(costs, shift):
    """Adding a constant shifts the optimum by cols*shift."""
    _, base = solve_rectangular(costs)
    _, shifted = solve_rectangular(costs + shift)
    assert shifted == base + costs.shape[1] * shift
