"""Property-based tests for the tile-library subsystem."""

from __future__ import annotations

import os
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.library import LibraryIndex, pair_penalty, reuse_counts
from repro.library.assign import GreedyPenaltyAssigner


@st.composite
def library_indices(draw):
    """Small but fully general :class:`LibraryIndex` instances."""
    count = draw(st.integers(min_value=1, max_value=6))
    sketch_grid = draw(st.sampled_from([1, 2]))
    tile_size = sketch_grid * draw(st.integers(min_value=1, max_value=3))
    thumb_size = draw(st.integers(min_value=1, max_value=8))
    tiles = draw(
        arrays(
            dtype=np.uint8,
            shape=(count, tile_size, tile_size),
            elements=st.integers(min_value=0, max_value=255),
        )
    )
    thumbs = draw(
        arrays(
            dtype=np.uint8,
            shape=(count, thumb_size, thumb_size),
            elements=st.integers(min_value=0, max_value=255),
        )
    )
    sketches = draw(
        arrays(
            dtype=np.float64,
            shape=(count, sketch_grid * sketch_grid),
            elements=st.floats(min_value=0.0, max_value=255.0, width=32),
        )
    )
    names = tuple(
        draw(
            st.lists(
                st.text(
                    alphabet=st.characters(
                        codec="utf-8", exclude_characters="\x00"
                    ),
                    max_size=20,
                ),
                min_size=count,
                max_size=count,
            )
        )
    )
    fingerprints = tuple(f"{i:032x}" for i in range(count))
    return LibraryIndex(
        tiles=tiles,
        thumbs=thumbs,
        sketches=sketches,
        names=names,
        fingerprints=fingerprints,
        sketch_grid=sketch_grid,
    )


@given(library_indices())
@settings(max_examples=30, deadline=None)
def test_index_save_load_roundtrip(index):
    """``load(save(index))`` is the identity, bit for bit."""
    fd, path = tempfile.mkstemp(suffix=".npz")
    os.close(fd)
    try:
        index.save(path)
        loaded = LibraryIndex.load(path)
    finally:
        os.unlink(path)
    assert np.array_equal(loaded.tiles, index.tiles)
    assert np.array_equal(loaded.thumbs, index.thumbs)
    assert np.array_equal(loaded.sketches, index.sketches)
    assert loaded.names == index.names
    assert loaded.fingerprints == index.fingerprints
    assert loaded.sketch_grid == index.sketch_grid
    assert loaded.content_fingerprint() == index.content_fingerprint()


@st.composite
def candidate_tables(draw):
    cells = draw(st.integers(min_value=1, max_value=12))
    k = draw(st.integers(min_value=1, max_value=5))
    library = draw(st.integers(min_value=k, max_value=20))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**16)))
    indices = np.stack(
        [rng.permutation(library)[:k] for _ in range(cells)]
    ).astype(np.int64)
    costs = np.sort(
        rng.integers(0, 1000, size=(cells, k)).astype(np.int64), axis=1
    )
    return indices, costs


@given(candidate_tables(), st.floats(min_value=0.0, max_value=4.0))
@settings(max_examples=50, deadline=None)
def test_greedy_assignment_invariants(table, lam):
    """Every choice comes from the cell's shortlist; the reported cost,
    reuse profile and objective are mutually consistent."""
    indices, costs = table
    result = GreedyPenaltyAssigner().solve(
        indices, costs, repetition_penalty=lam
    )
    cells, _ = indices.shape
    assert result.choice.shape == (cells,)
    total = 0
    for cell in range(cells):
        row = indices[cell]
        matches = np.flatnonzero(row == result.choice[cell])
        assert matches.size >= 1
        total += int(costs[cell, matches].min())
    # Greedy picks the cheapest slot of the chosen tile, so the
    # recomputed minimum matches the reported total exactly.
    assert result.total_cost == total
    counts = reuse_counts(result.choice)
    assert int(counts.sum()) == cells
    assert result.max_reuse == int(counts.max())
    assert result.unique_tiles == int(np.count_nonzero(counts))
    step = int(round(lam * result.meta["penalty_unit"]))
    assert result.meta["objective"] == result.total_cost + step * pair_penalty(
        counts
    )
