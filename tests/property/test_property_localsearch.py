"""Property-based tests for the local-search invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.assignment import get_solver
from repro.cost.matrix import total_error
from repro.localsearch import local_search_parallel, local_search_serial

matrices = arrays(
    dtype=np.int64,
    shape=st.tuples(
        st.shared(st.integers(min_value=1, max_value=20), key="n"),
        st.shared(st.integers(min_value=1, max_value=20), key="n"),
    ),
    elements=st.integers(min_value=0, max_value=5_000),
)


def _is_2opt_optimal(matrix: np.ndarray, perm: np.ndarray) -> bool:
    s = matrix.shape[0]
    for u in range(s):
        for v in range(u + 1, s):
            if (
                matrix[perm[u], u] + matrix[perm[v], v]
                > matrix[perm[v], u] + matrix[perm[u], v]
            ):
                return False
    return True


@given(matrices)
@settings(max_examples=40, deadline=None)
def test_serial_reaches_2opt_optimum(m):
    result = local_search_serial(m)
    assert _is_2opt_optimal(m, result.permutation)


@given(matrices)
@settings(max_examples=40, deadline=None)
def test_parallel_reaches_2opt_optimum(m):
    result = local_search_parallel(m)
    assert _is_2opt_optimal(m, result.permutation)


@given(matrices)
@settings(max_examples=40, deadline=None)
def test_local_search_bounded_by_optimum_and_start(m):
    n = m.shape[0]
    optimal = get_solver("scipy").solve(m).total
    start_error = total_error(m, np.arange(n))
    for result in (local_search_serial(m), local_search_parallel(m)):
        assert optimal <= result.total <= start_error


@given(matrices)
@settings(max_examples=30, deadline=None)
def test_totals_monotone_nonincreasing(m):
    for result in (local_search_serial(m), local_search_parallel(m)):
        totals = result.trace.totals
        assert all(a >= b for a, b in zip(totals, totals[1:]))


@given(matrices)
@settings(max_examples=30, deadline=None)
def test_last_sweep_clean(m):
    for result in (local_search_serial(m), local_search_parallel(m)):
        assert result.trace.swap_counts[-1] == 0


@given(matrices)
@settings(max_examples=30, deadline=None)
def test_result_is_permutation(m):
    n = m.shape[0]
    for result in (local_search_serial(m), local_search_parallel(m)):
        assert (np.sort(result.permutation) == np.arange(n)).all()


@given(matrices)
@settings(max_examples=20, deadline=None)
def test_idempotent_on_own_output(m):
    first = local_search_serial(m)
    second = local_search_serial(m, first.permutation)
    assert second.total == first.total
    assert second.sweeps == 1
