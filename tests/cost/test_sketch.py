"""Unit tests for the tile sketch features (:mod:`repro.cost.sketch`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.sketch import (
    DEFAULT_BUCKETS,
    DEFAULT_PCA_DIMS,
    SKETCH_KINDS,
    bucket_means,
    sketch_features,
)
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def features(  # deterministic, structured enough for PCA to be non-trivial
) -> np.ndarray:
    grid = np.linspace(0, 255, 20 * 64).reshape(20, 64)
    return (grid + 17 * np.sin(np.arange(64))[None, :]).astype(np.float64)


def test_kinds_constant():
    assert SKETCH_KINDS == ("mean", "pyramid", "pca")


@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_shapes_and_finiteness(features, kind):
    out = sketch_features(features, kind)
    assert out.shape[0] == features.shape[0]
    assert out.ndim == 2
    assert np.isfinite(out).all()


def test_unknown_kind_rejected(features):
    with pytest.raises(ValidationError, match="sketch"):
        sketch_features(features, "wavelet")


def test_mean_sketch_is_bucketed_means(features):
    out = sketch_features(features, "mean", buckets=4)
    assert out.shape == (features.shape[0], 4)
    np.testing.assert_allclose(out, bucket_means(features, 4))
    # Bucket means of a constant row are that constant.
    const = np.full((1, 64), 42.0)
    np.testing.assert_allclose(bucket_means(const, 4), 42.0)


def test_bucket_count_caps_at_feature_width():
    narrow = np.arange(6, dtype=np.float64).reshape(2, 3)
    out = bucket_means(narrow, DEFAULT_BUCKETS)
    assert out.shape == (2, 3)
    np.testing.assert_allclose(out, narrow)


def test_pyramid_sketch_coarsens_progressively(features):
    out = sketch_features(features, "pyramid")
    # The first component is the global mean — the coarsest level.
    np.testing.assert_allclose(out[:, 0], features.mean(axis=1))


def test_pca_sketch_dims(features):
    out = sketch_features(features, "pca", dims=3)
    assert out.shape == (features.shape[0], 3)
    full = sketch_features(features, "pca")
    assert full.shape[1] <= DEFAULT_PCA_DIMS


def test_pca_shared_basis_embeds_both_stacks_consistently(features):
    """Sketching two stacks against one shared basis keeps their
    cross-distances meaningful: sketching a stack against itself as the
    basis equals plain PCA sketching."""
    shared = sketch_features(features, "pca", basis_features=features)
    plain = sketch_features(features, "pca")
    np.testing.assert_allclose(shared, plain, atol=1e-9)

    other = features[::-1] * 0.5
    basis = np.concatenate([features, other], axis=0)
    a = sketch_features(features, "pca", basis_features=basis)
    b = sketch_features(other, "pca", basis_features=basis)
    assert a.shape[1] == b.shape[1]  # one space, comparable distances


def test_sketches_preserve_identical_tiles(features):
    """Two identical feature rows sketch to identical vectors (distance
    zero) for every kind — the property shortlisting relies on."""
    doubled = np.concatenate([features[:1], features[:1], features])
    for kind in SKETCH_KINDS:
        out = sketch_features(doubled, kind)
        np.testing.assert_allclose(out[0], out[1])


def test_sketch_dim_is_much_smaller_than_features(rng):
    wide = rng.normal(size=(32, 4096))
    for kind in SKETCH_KINDS:
        out = sketch_features(wide, kind)
        assert out.shape[1] <= 64
