"""Cross-job batched Step-2 builder: bit-identity and shared-work tests.

The contract of :class:`repro.cost.batch.BatchedErrorMatrixBuilder` is
that batching changes *scheduling*, never *values*: every per-job slice
of a stacked launch must equal the solo
:func:`~repro.cost.matrix.error_matrix` /
:func:`~repro.cost.sparse.sparse_error_matrix` result bit for bit, for
every batch size, metric and density.  The differential classes here pin
exactly that, and the unit classes pin the shared-work accounting
(feature prep once per unique stack, one launch per unique target) that
makes batching worth doing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost import error_matrix, sparse_error_matrix
from repro.cost.batch import (
    BatchedErrorMatrixBuilder,
    BatchJob,
    batch_fingerprint,
)
from repro.exceptions import ValidationError

BATCH_SIZES = (1, 2, 5)
METRICS = ("sad", "ssd")
S, M = 36, 8
TOP_K = 7


def _stack(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(S, M, M), dtype=np.uint8)


def _jobs(batch: int, *, top_k: int = 0, share_target: bool = True):
    """``batch`` jobs; even-indexed ones share one target stack."""
    shared = _stack(1000)
    jobs = []
    for index in range(batch):
        target = shared if (share_target and index % 2 == 0) else _stack(500 + index)
        jobs.append(
            BatchJob(_stack(index), target, top_k=top_k, seed=42)
        )
    return jobs


class TestDenseDifferential:
    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_slices_equal_solo_matrices(self, batch, metric):
        jobs = _jobs(batch)
        builder = BatchedErrorMatrixBuilder(metric)
        results = builder.compute_dense(jobs)
        assert len(results) == batch
        for job, got in zip(jobs, results):
            want = error_matrix(job.input_tiles, job.target_tiles, metric)
            assert got.dtype == want.dtype
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("metric", METRICS)
    def test_tiny_chunk_budget_is_bit_identical(self, metric):
        """Any row partition of the stacked launch yields the same values."""
        jobs = _jobs(3)
        builder = BatchedErrorMatrixBuilder(metric, batch_chunk_budget=1)
        for job, got in zip(jobs, builder.compute_dense(jobs)):
            np.testing.assert_array_equal(
                got, error_matrix(job.input_tiles, job.target_tiles, metric)
            )


class TestSparseDifferential:
    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_slices_equal_solo_shortlists(self, batch, metric):
        jobs = _jobs(batch, top_k=TOP_K)
        builder = BatchedErrorMatrixBuilder(metric)
        results = builder.compute_sparse(jobs)
        for job, got in zip(jobs, results):
            want = sparse_error_matrix(
                job.input_tiles,
                job.target_tiles,
                metric,
                top_k=TOP_K,
                seed=42,
            )
            np.testing.assert_array_equal(got.indices, want.indices)
            np.testing.assert_array_equal(got.costs, want.costs)
            assert got.meta == want.meta

    @pytest.mark.parametrize("batch", (1, 3))
    def test_complete_jobs_take_the_dense_path(self, batch):
        """``top_k >= S`` lists every position, exactly like solo."""
        jobs = _jobs(batch, top_k=S)
        results = BatchedErrorMatrixBuilder("sad").compute_sparse(jobs)
        for job, got in zip(jobs, results):
            want = sparse_error_matrix(
                job.input_tiles, job.target_tiles, "sad", top_k=S, seed=42
            )
            assert got.meta["complete"] is True
            np.testing.assert_array_equal(got.indices, want.indices)
            np.testing.assert_array_equal(got.costs, want.costs)
            assert got.meta == want.meta

    def test_mixed_complete_and_partial_batch(self):
        jobs = [
            BatchJob(_stack(0), _stack(10), top_k=S, seed=1),
            BatchJob(_stack(1), _stack(11), top_k=TOP_K, seed=1),
        ]
        results = BatchedErrorMatrixBuilder("sad").compute_sparse(jobs)
        assert results[0].complete and not results[1].complete
        for job, got in zip(jobs, results):
            want = sparse_error_matrix(
                job.input_tiles,
                job.target_tiles,
                "sad",
                top_k=job.top_k,
                seed=1,
            )
            np.testing.assert_array_equal(got.indices, want.indices)
            np.testing.assert_array_equal(got.costs, want.costs)

    @pytest.mark.parametrize("sketch", ("mean", "pca"))
    def test_sketch_kinds_match_solo(self, sketch):
        jobs = [
            BatchJob(_stack(i), _stack(100), top_k=5, sketch=sketch, seed=9)
            for i in range(3)
        ]
        results = BatchedErrorMatrixBuilder("sad").compute_sparse(jobs)
        for job, got in zip(jobs, results):
            want = sparse_error_matrix(
                job.input_tiles,
                job.target_tiles,
                "sad",
                top_k=5,
                sketch=sketch,
                seed=9,
            )
            np.testing.assert_array_equal(got.indices, want.indices)
            np.testing.assert_array_equal(got.costs, want.costs)


class TestSharedWorkAccounting:
    def test_prepare_runs_once_per_unique_stack(self):
        shared_target = _stack(77)
        jobs = [BatchJob(_stack(i), shared_target) for i in range(4)]
        builder = BatchedErrorMatrixBuilder("sad")
        builder.compute_dense(jobs)
        stats = builder.last_stats
        assert stats.jobs == 4
        assert stats.unique_target_stacks == 1
        assert stats.prepare_calls == 5  # 4 inputs + 1 shared target
        assert stats.launches == 1  # one stacked launch for the group

    def test_sparse_shares_sketches_and_clustering(self):
        inp, tgt = _stack(3), _stack(4)
        jobs = [BatchJob(inp, tgt, top_k=5, seed=2) for _ in range(3)]
        builder = BatchedErrorMatrixBuilder("sad")
        builder.compute_sparse(jobs)
        stats = builder.last_stats
        assert stats.prepare_calls == 2  # one input + one target stack
        assert stats.sketch_calls == 2
        assert stats.kmeans_calls == 1
        assert stats.launches == 1  # one stacked scoring launch
        assert stats.pairs_evaluated == 3 * S * 5

    def test_distinct_seeds_cluster_separately(self):
        inp, tgt = _stack(3), _stack(4)
        jobs = [BatchJob(inp, tgt, top_k=5, seed=s) for s in (1, 2)]
        builder = BatchedErrorMatrixBuilder("sad")
        builder.compute_sparse(jobs)
        assert builder.last_stats.kmeans_calls == 2


class TestValidation:
    def test_empty_batch_returns_empty(self):
        builder = BatchedErrorMatrixBuilder("sad")
        assert builder.compute_dense([]) == []
        assert builder.compute_sparse([]) == []

    def test_mismatched_grids_rejected(self):
        small = np.zeros((4, 8, 8), dtype=np.uint8)
        jobs = [BatchJob(_stack(0), _stack(1)), BatchJob(small, small)]
        with pytest.raises(ValidationError):
            BatchedErrorMatrixBuilder("sad").compute_dense(jobs)

    def test_sparse_rejects_bad_knobs(self):
        job = BatchJob(_stack(0), _stack(1), top_k=0)
        with pytest.raises(ValidationError):
            BatchedErrorMatrixBuilder("sad").compute_sparse([job])
        job = BatchJob(_stack(0), _stack(1), top_k=3, sketch="nope")
        with pytest.raises(ValidationError):
            BatchedErrorMatrixBuilder("sad").compute_sparse([job])

    def test_bad_budgets_rejected(self):
        with pytest.raises(ValidationError):
            BatchedErrorMatrixBuilder("sad", chunk_budget=0)
        with pytest.raises(ValidationError):
            BatchedErrorMatrixBuilder("sad", batch_chunk_budget=-1)


class TestFingerprint:
    def test_same_knobs_same_key(self):
        kwargs = dict(
            grid_tiles=64,
            tile_shape=(8, 8),
            metric="sad",
            backend="numpy",
            top_k=8,
            sketch="mean",
        )
        assert batch_fingerprint(**kwargs) == batch_fingerprint(**kwargs)

    @pytest.mark.parametrize(
        "override",
        [
            {"grid_tiles": 128},
            {"tile_shape": (16, 16)},
            {"metric": "ssd"},
            {"backend": "cupy"},
            {"top_k": 16},
            {"sketch": "pca"},
            {"top_k": 0},
        ],
    )
    def test_any_knob_change_changes_key(self, override):
        base = dict(
            grid_tiles=64,
            tile_shape=(8, 8),
            metric="sad",
            backend="numpy",
            top_k=8,
            sketch="mean",
        )
        assert batch_fingerprint(**base) != batch_fingerprint(**{**base, **override})

    def test_dense_ignores_sparse_knobs(self):
        base = dict(
            grid_tiles=64, tile_shape=(8, 8), metric="sad", backend="numpy"
        )
        assert batch_fingerprint(**base, top_k=0, sketch="mean") == batch_fingerprint(
            **base, top_k=0, sketch="pca"
        )
