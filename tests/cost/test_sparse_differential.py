"""Differential exact-vs-sparse verification layer.

The sparse Step-2 pipeline (:mod:`repro.cost.sparse`) must degrade
*only* by omission: with ``top_k >= S`` every candidate is present and
the whole pipeline — error totals, the assignment itself, and the
rendered mosaic — must be **bit-identical** to the dense path, across
grid sizes, metrics and algorithms.  With a small ``top_k`` the result
may differ, but only inside a pinned quality envelope, and the costs it
does compute are always the exact metric values.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.cost import error_matrix, sparse_error_matrix
from repro.imaging import standard_image
from repro.mosaic.generator import generate_photomosaic
from repro.tiles.grid import TileGrid

GRID_SIZES = (32, 48, 64)  # S = 16, 36, 64 tiles at tile_size 8
METRICS = ("sad", "ssd")
ALGORITHMS = ("optimization", "approximation", "parallel")


def _checksum(image: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(image, dtype=np.uint8).tobytes()
    ).hexdigest()


def _stacks(size: int, metric_pair=("portrait", "sailboat")):
    grid = TileGrid(size, size, 8)
    return (
        grid.split(standard_image(metric_pair[0], size)),
        grid.split(standard_image(metric_pair[1], size)),
    )


class TestCompleteBitIdentity:
    """``top_k >= S``: sparse is the dense pipeline, bit for bit."""

    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("size", GRID_SIZES)
    def test_matrix_round_trips_exactly(self, size, metric):
        tiles_in, tiles_tg = _stacks(size)
        s = tiles_in.shape[0]
        dense = error_matrix(tiles_in, tiles_tg, metric)
        sparse = sparse_error_matrix(
            tiles_in, tiles_tg, metric, top_k=s, seed=0
        )
        assert sparse.complete
        assert sparse.meta["pairs_evaluated"] == s * s
        np.testing.assert_array_equal(sparse.to_dense(), dense)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("size", GRID_SIZES)
    def test_pipeline_bit_identical(self, size, metric, algorithm):
        """Totals, assignment and rendered bytes all match the dense run."""
        inp = standard_image("portrait", size)
        tgt = standard_image("sailboat", size)
        s = (size // 8) ** 2
        dense = generate_photomosaic(
            inp, tgt, tile_size=8, algorithm=algorithm, metric=metric
        )
        sparse = generate_photomosaic(
            inp,
            tgt,
            tile_size=8,
            algorithm=algorithm,
            metric=metric,
            shortlist_top_k=s,
            shortlist_seed=3,
        )
        assert sparse.total_error == dense.total_error
        np.testing.assert_array_equal(sparse.permutation, dense.permutation)
        assert _checksum(sparse.image) == _checksum(dense.image)
        shortlist = sparse.meta["shortlist"]
        assert shortlist["complete"] is True
        assert shortlist["fallback"] == 0


class TestSparseExactness:
    """Shortlisted costs are exact metric values — never approximations."""

    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("sketch", ("mean", "pyramid", "pca"))
    def test_costs_match_dense_entries(self, metric, sketch):
        tiles_in, tiles_tg = _stacks(64)
        dense = error_matrix(tiles_in, tiles_tg, metric)
        sparse = sparse_error_matrix(
            tiles_in, tiles_tg, metric, top_k=8, sketch=sketch, seed=5
        )
        rows = np.repeat(np.arange(sparse.size), sparse.top_k)
        np.testing.assert_array_equal(
            sparse.costs.ravel(), dense[rows, sparse.indices.ravel()]
        )
        assert sparse.meta["pairs_evaluated"] == sparse.size * sparse.top_k

    def test_exact_total_matches_dense_total(self, rng):
        tiles_in, tiles_tg = _stacks(64)
        dense = error_matrix(tiles_in, tiles_tg)
        sparse = sparse_error_matrix(tiles_in, tiles_tg, top_k=8, seed=5)
        perm = rng.permutation(sparse.size)
        expected = int(dense[perm, np.arange(sparse.size)].sum())
        assert sparse.exact_total(perm) == expected


class TestSmallTopKEnvelope:
    """Small ``top_k`` stays inside the pinned quality/coverage envelope.

    The poster-scale envelope (S=1024, top_k=32: <= 10% of pairs scored,
    total within 2% of exact) is pinned by
    ``benchmarks/bench_sparse_step2.py`` and recorded in BENCH_8.json;
    this in-suite check pins a smaller instance so the suite stays fast.
    """

    ENVELOPE_RATIO = 1.06  # measured 1.035 at S=256/top_k=32; headroom for seeds
    SIZE = 128  # S = 256 tiles

    @pytest.mark.parametrize("metric", METRICS)
    def test_quality_within_envelope(self, metric):
        inp = standard_image("portrait", self.SIZE)
        tgt = standard_image("sailboat", self.SIZE)
        exact = generate_photomosaic(
            inp, tgt, tile_size=8, algorithm="parallel", metric=metric
        )
        sparse = generate_photomosaic(
            inp,
            tgt,
            tile_size=8,
            algorithm="parallel",
            metric=metric,
            shortlist_top_k=32,
            shortlist_seed=11,
        )
        ratio = sparse.total_error / exact.total_error
        assert ratio <= self.ENVELOPE_RATIO, (
            f"sparse total {sparse.total_error} vs exact {exact.total_error} "
            f"(ratio {ratio:.4f}) breaches the {self.ENVELOPE_RATIO} envelope"
        )
        shortlist = sparse.meta["shortlist"]
        s = (self.SIZE // 8) ** 2
        assert shortlist["pairs_evaluated"] == s * 32
        assert shortlist["pairs_evaluated"] / shortlist["pairs_total"] <= 0.2

    def test_sparse_run_is_seed_reproducible(self):
        inp = standard_image("portrait", self.SIZE)
        tgt = standard_image("sailboat", self.SIZE)
        runs = [
            generate_photomosaic(
                inp,
                tgt,
                tile_size=8,
                algorithm="parallel",
                shortlist_top_k=16,
                shortlist_seed=21,
            )
            for _ in range(2)
        ]
        assert runs[0].total_error == runs[1].total_error
        np.testing.assert_array_equal(runs[0].permutation, runs[1].permutation)
        assert _checksum(runs[0].image) == _checksum(runs[1].image)
