"""Vectorised degree-capped selection vs the sequential reference.

``_degree_capped_select`` was rewritten from a per-row Python loop to
vectorised rounds (stable argsort + per-group rank against remaining
capacity).  The rewrite must be **bit-identical**: the sequential
semantics — rows processed in ascending order within each round, a claim
on position ``v`` granted while ``degree[v] < top_k`` — are what the
Hypothesis structural properties and the sparse differential suite were
pinned against.  This suite keeps the original loop as an executable
specification and diffs the two on random and adversarial preference
profiles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.sparse import _degree_capped_select


def _reference_select(orders: np.ndarray, top_k: int) -> np.ndarray:
    """The pre-vectorisation sequential loop, kept as the specification."""
    s = orders.shape[0]
    degree = np.zeros(s, dtype=np.int64)
    counts = np.zeros(s, dtype=np.int64)
    selected = np.full((s, top_k), -1, dtype=np.int64)
    ptr = np.zeros(s, dtype=np.int64)
    active = list(range(s))
    while active:
        still = []
        for u in active:
            v = int(orders[u, ptr[u]])
            ptr[u] += 1
            if degree[v] < top_k:
                selected[u, counts[u]] = v
                counts[u] += 1
                degree[v] += 1
            if counts[u] < top_k and ptr[u] < s:
                still.append(u)
        active = still
    for u in np.flatnonzero(counts < top_k):
        used = set(selected[u, : counts[u]].tolist())
        for v in orders[u]:
            if int(v) not in used:
                selected[u, counts[u]] = v
                counts[u] += 1
                used.add(int(v))
                if counts[u] == top_k:
                    break
    return selected


def _random_orders(s: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.stack([rng.permutation(s) for _ in range(s)]).astype(np.int64)


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("s,top_k", [(8, 3), (16, 5), (32, 8), (16, 16)])
def test_matches_reference_on_random_orders(s, top_k, seed):
    orders = _random_orders(s, seed)
    np.testing.assert_array_equal(
        _degree_capped_select(orders, top_k),
        _reference_select(orders, top_k),
    )


def test_matches_reference_under_full_contention():
    """Every row prefers the same order: maximal per-round grouping."""
    s, top_k = 24, 6
    orders = np.tile(np.arange(s, dtype=np.int64), (s, 1))
    np.testing.assert_array_equal(
        _degree_capped_select(orders, top_k),
        _reference_select(orders, top_k),
    )


def test_matches_reference_when_rows_exhaust():
    """Reversed-vs-forward preference mix exercises the tail fallback."""
    s, top_k = 12, 4
    forward = np.arange(s, dtype=np.int64)
    orders = np.stack(
        [forward if u % 2 == 0 else forward[::-1] for u in range(s)]
    )
    np.testing.assert_array_equal(
        _degree_capped_select(orders, top_k),
        _reference_select(orders, top_k),
    )


def test_invariants_hold():
    orders = _random_orders(20, 7)
    selected = _degree_capped_select(orders, 5)
    assert selected.shape == (20, 5)
    assert (selected >= 0).all() and (selected < 20).all()
    for row in selected:
        assert len(set(row.tolist())) == 5  # unique positions per row
