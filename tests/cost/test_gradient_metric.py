"""Tests for the gradient-aware cost metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost import get_metric
from repro.cost.gradient import GradientMetric
from repro.cost.matrix import error_matrix
from repro.cost.sad import SADMetric
from repro.exceptions import ValidationError


class TestGradientMetric:
    def test_registered(self):
        assert get_metric("gradient").name == "gradient"

    def test_identical_tiles_zero(self, rng):
        tile = rng.integers(0, 256, size=(8, 8)).astype(np.uint8)
        assert GradientMetric().tile_error(tile, tile) == 0

    def test_weight_zero_equals_sad(self, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        grad0 = error_matrix(tiles_in, tiles_tg, GradientMetric(weight=0))
        sad = error_matrix(tiles_in, tiles_tg, SADMetric())
        assert (grad0 == sad).all()

    def test_dominates_sad(self, tile_stacks_8x8):
        """Adding a non-negative gradient term can only raise the error."""
        tiles_in, tiles_tg = tile_stacks_8x8
        grad = error_matrix(tiles_in, tiles_tg, GradientMetric(weight=2))
        sad = error_matrix(tiles_in, tiles_tg, SADMetric())
        assert (grad >= sad).all()

    def test_penalises_edge_mismatch(self):
        """Two tiles with equal intensity-SAD to a target: the one whose
        edge structure matches must win under the gradient metric."""
        target = np.zeros((8, 8), dtype=np.uint8)
        target[:, 4:] = 100  # vertical edge
        match = np.zeros((8, 8), dtype=np.uint8)
        match[:, 4:] = 90  # same edge, slightly dimmer
        flat = np.full((8, 8), 45, dtype=np.uint8)  # no edge at all
        sad = SADMetric()
        # Construct comparable intensity errors.
        sad_match = sad.tile_error(match, target)
        sad_flat = sad.tile_error(flat, target)
        metric = GradientMetric(weight=4)
        g_match = metric.tile_error(match, target)
        g_flat = metric.tile_error(flat, target)
        # The gradient term must penalise the flat tile far more than the
        # edge-preserving tile, relative to the plain SAD baseline.
        assert (g_flat - sad_flat) > (g_match - sad_match)

    def test_weight_scales_gradient_term(self, rng):
        a = rng.integers(0, 256, size=(8, 8)).astype(np.uint8)
        b = rng.integers(0, 256, size=(8, 8)).astype(np.uint8)
        sad = SADMetric().tile_error(a, b)
        e1 = GradientMetric(weight=1).tile_error(a, b)
        e3 = GradientMetric(weight=3).tile_error(a, b)
        assert (e3 - sad) == 3 * (e1 - sad)

    def test_rejects_color_tiles(self):
        with pytest.raises(ValidationError, match="gray"):
            GradientMetric().prepare(np.zeros((2, 4, 4, 3), dtype=np.uint8))

    def test_rejects_bad_weight(self):
        with pytest.raises(ValidationError, match="weight"):
            GradientMetric(weight=-1)
        with pytest.raises(ValidationError, match="weight"):
            GradientMetric(weight=1.5)

    def test_pipeline_integration(self, small_pair):
        from repro import generate_photomosaic

        inp, tgt = small_pair
        result = generate_photomosaic(inp, tgt, tile_size=8, metric="gradient")
        assert result.total_error > 0
        assert result.image.shape == inp.shape
