"""Tests for error-matrix computation (Step 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.matrix import error_matrix, total_error, total_error_of_permutation
from repro.cost.reference import error_matrix_reference
from repro.exceptions import ValidationError
from repro.tiles.permutation import random_permutation


class TestErrorMatrix:
    def test_matches_reference(self, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        vec = error_matrix(tiles_in, tiles_tg)
        ref = error_matrix_reference(tiles_in, tiles_tg)
        assert (vec == ref).all()

    def test_shape_and_dtype(self, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        m = error_matrix(tiles_in, tiles_tg)
        assert m.shape == (64, 64)
        assert m.dtype == np.int64

    def test_orientation_row_is_input(self, tile_stacks_8x8):
        """E[u, v] must be error(input u, target v), the paper's w_{u,v}."""
        from repro.cost.sad import SADMetric

        tiles_in, tiles_tg = tile_stacks_8x8
        m = error_matrix(tiles_in, tiles_tg)
        metric = SADMetric()
        assert m[3, 5] == metric.tile_error(tiles_in[3], tiles_tg[5])
        assert m[5, 3] == metric.tile_error(tiles_in[5], tiles_tg[3])

    def test_identical_stacks_zero_diagonal(self, tile_stacks_8x8):
        tiles_in, _ = tile_stacks_8x8
        m = error_matrix(tiles_in, tiles_in)
        assert (np.diag(m) == 0).all()

    def test_chunking_invariant(self, tile_stacks_8x8):
        """Any chunk budget must give bit-identical results."""
        tiles_in, tiles_tg = tile_stacks_8x8
        full = error_matrix(tiles_in, tiles_tg)
        for budget in (1, 1000, 10**9):
            assert (error_matrix(tiles_in, tiles_tg, chunk_budget=budget) == full).all()

    def test_rejects_bad_chunk_budget(self, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        with pytest.raises(ValidationError, match="chunk_budget"):
            error_matrix(tiles_in, tiles_tg, chunk_budget=0)

    def test_rejects_mismatched_stacks(self, tile_stacks_8x8):
        tiles_in, _ = tile_stacks_8x8
        with pytest.raises(ValidationError, match="differ"):
            error_matrix(tiles_in, tiles_in[:10])

    @pytest.mark.parametrize("metric", ["sad", "ssd", "luminance"])
    def test_all_metrics_produce_valid_matrices(self, metric, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        m = error_matrix(tiles_in, tiles_tg, metric)
        assert (m >= 0).all()
        assert m.shape == (64, 64)


class TestTotalError:
    def test_identity_is_trace(self, small_error_matrix):
        perm = np.arange(small_error_matrix.shape[0])
        assert total_error(small_error_matrix, perm) == int(np.trace(small_error_matrix))

    def test_manual_sum(self, small_error_matrix):
        s = small_error_matrix.shape[0]
        perm = random_permutation(s, seed=11)
        expected = sum(int(small_error_matrix[perm[v], v]) for v in range(s))
        assert total_error(small_error_matrix, perm) == expected

    def test_matches_direct_tile_computation(self, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        m = error_matrix(tiles_in, tiles_tg)
        perm = random_permutation(64, seed=5)
        assert total_error(m, perm) == total_error_of_permutation(
            tiles_in, tiles_tg, perm
        )

    def test_direct_computation_chunking(self, tile_stacks_8x8):
        """total_error_of_permutation must agree across its internal slabs."""
        tiles_in, tiles_tg = tile_stacks_8x8
        m = error_matrix(tiles_in, tiles_tg)
        for seed in range(3):
            perm = random_permutation(64, seed=seed)
            assert total_error(m, perm) == total_error_of_permutation(
                tiles_in, tiles_tg, perm
            )

    def test_rejects_wrong_size_perm(self, small_error_matrix):
        with pytest.raises(ValidationError):
            total_error(small_error_matrix, np.arange(5))
