"""Tests for the multiprocess error-matrix computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.matrix import error_matrix
from repro.cost.parallel_matrix import error_matrix_parallel
from repro.exceptions import ValidationError


class TestCorrectness:
    def test_matches_serial(self, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        serial = error_matrix(tiles_in, tiles_tg)
        parallel = error_matrix_parallel(tiles_in, tiles_tg, workers=3, force=True)
        assert (serial == parallel).all()

    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_any_worker_count(self, workers, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        expected = error_matrix(tiles_in, tiles_tg)
        got = error_matrix_parallel(
            tiles_in, tiles_tg, workers=workers, force=True
        )
        assert (got == expected).all()

    def test_workers_exceeding_rows(self, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        got = error_matrix_parallel(tiles_in, tiles_tg, workers=1000, force=True)
        assert (got == error_matrix(tiles_in, tiles_tg)).all()

    @pytest.mark.parametrize("metric", ["sad", "ssd", "luminance"])
    def test_all_named_metrics(self, metric, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        expected = error_matrix(tiles_in, tiles_tg, metric)
        got = error_matrix_parallel(
            tiles_in, tiles_tg, metric, workers=2, force=True
        )
        assert (got == expected).all()

    def test_small_problem_fallback(self, tile_stacks_8x8):
        """Below the work threshold the serial path runs (same result)."""
        tiles_in, tiles_tg = tile_stacks_8x8
        got = error_matrix_parallel(tiles_in, tiles_tg, workers=4)  # no force
        assert (got == error_matrix(tiles_in, tiles_tg)).all()

    def test_single_tile(self):
        tile = np.full((1, 4, 4), 7, dtype=np.uint8)
        got = error_matrix_parallel(tile, tile, force=True)
        assert got.shape == (1, 1)
        assert got[0, 0] == 0


class TestValidation:
    def test_rejects_metric_instance(self, tile_stacks_8x8):
        from repro.cost.sad import SADMetric

        tiles_in, tiles_tg = tile_stacks_8x8
        with pytest.raises(ValidationError, match="registry name"):
            error_matrix_parallel(tiles_in, tiles_tg, SADMetric())

    def test_rejects_zero_workers(self, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        with pytest.raises(ValidationError, match="workers"):
            error_matrix_parallel(tiles_in, tiles_tg, workers=0)

    def test_rejects_mismatched_stacks(self, tile_stacks_8x8):
        tiles_in, _ = tile_stacks_8x8
        with pytest.raises(ValidationError, match="differ"):
            error_matrix_parallel(tiles_in, tiles_in[:3])
