"""Tests for the pure-Python reference implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.reference import error_matrix_reference, tile_error_reference
from repro.exceptions import ValidationError


class TestTileErrorReference:
    def test_known_value(self):
        a = np.array([[0, 10], [20, 30]], dtype=np.uint8)
        b = np.array([[5, 5], [25, 25]], dtype=np.uint8)
        assert tile_error_reference(a, b) == 5 + 5 + 5 + 5

    def test_identical_zero(self, rng):
        t = rng.integers(0, 256, size=(8, 8)).astype(np.uint8)
        assert tile_error_reference(t, t) == 0

    def test_matches_vectorized_metric(self, rng):
        from repro.cost.sad import SADMetric

        metric = SADMetric()
        for _ in range(5):
            a = rng.integers(0, 256, size=(6, 6)).astype(np.uint8)
            b = rng.integers(0, 256, size=(6, 6)).astype(np.uint8)
            assert tile_error_reference(a, b) == metric.tile_error(a, b)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            tile_error_reference(
                np.zeros((2, 2), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8)
            )


class TestErrorMatrixReference:
    def test_small_case_by_hand(self):
        tiles_in = np.array([[[0]], [[10]]], dtype=np.uint8)
        tiles_tg = np.array([[[5]], [[20]]], dtype=np.uint8)
        m = error_matrix_reference(tiles_in, tiles_tg)
        assert m.tolist() == [[5, 20], [5, 10]]

    def test_dtype(self, rng):
        tiles = rng.integers(0, 256, size=(4, 4, 4)).astype(np.uint8)
        assert error_matrix_reference(tiles, tiles).dtype == np.int64

    def test_mismatch_raises(self, rng):
        tiles = rng.integers(0, 256, size=(4, 4, 4)).astype(np.uint8)
        with pytest.raises(ValidationError):
            error_matrix_reference(tiles, tiles[:2])
