"""Tests for the cost metrics (paper Eq. 1 and its variants)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost import (
    CostMetric,
    LuminanceMetric,
    SADMetric,
    SSDMetric,
    WeightedColorMetric,
    get_metric,
)
from repro.exceptions import ValidationError


class TestRegistry:
    @pytest.mark.parametrize("name", ["sad", "ssd", "luminance", "color"])
    def test_lookup(self, name):
        assert get_metric(name).name == name

    def test_instance_passes_through(self):
        metric = SADMetric()
        assert get_metric(metric) is metric

    def test_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown cost metric"):
            get_metric("l3")


class TestSAD:
    def test_identical_tiles_zero(self, rng):
        tile = rng.integers(0, 256, size=(8, 8)).astype(np.uint8)
        assert SADMetric().tile_error(tile, tile) == 0

    def test_known_value(self):
        a = np.zeros((2, 2), dtype=np.uint8)
        b = np.array([[1, 2], [3, 4]], dtype=np.uint8)
        assert SADMetric().tile_error(a, b) == 10

    def test_symmetric(self, rng):
        a = rng.integers(0, 256, size=(4, 4)).astype(np.uint8)
        b = rng.integers(0, 256, size=(4, 4)).astype(np.uint8)
        m = SADMetric()
        assert m.tile_error(a, b) == m.tile_error(b, a)

    def test_max_value(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = np.full((4, 4), 255, dtype=np.uint8)
        assert SADMetric().tile_error(a, b) == 16 * 255

    def test_triangle_inequality(self, rng):
        m = SADMetric()
        a, b, c = (rng.integers(0, 256, size=(4, 4)).astype(np.uint8) for _ in range(3))
        assert m.tile_error(a, c) <= m.tile_error(a, b) + m.tile_error(b, c)

    def test_color_tiles_flatten_channels(self):
        a = np.zeros((2, 2, 3), dtype=np.uint8)
        b = np.ones((2, 2, 3), dtype=np.uint8)
        assert SADMetric().tile_error(a, b) == 12

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError, match="differ"):
            SADMetric().tile_error(
                np.zeros((2, 2), dtype=np.uint8), np.zeros((3, 3), dtype=np.uint8)
            )


class TestSSD:
    def test_known_value(self):
        a = np.zeros((2, 2), dtype=np.uint8)
        b = np.array([[1, 2], [3, 4]], dtype=np.uint8)
        assert SSDMetric().tile_error(a, b) == 1 + 4 + 9 + 16

    def test_identical_zero(self, rng):
        tile = rng.integers(0, 256, size=(8, 8)).astype(np.uint8)
        assert SSDMetric().tile_error(tile, tile) == 0

    def test_gemm_expansion_matches_direct(self, rng):
        """The |a|^2 - 2ab + |b|^2 trick must be exact for uint8 inputs."""
        m = SSDMetric()
        a = rng.integers(0, 256, size=(6, 8, 8)).astype(np.uint8)
        b = rng.integers(0, 256, size=(6, 8, 8)).astype(np.uint8)
        block = m.pairwise(m.prepare(a), m.prepare(b))
        direct = (
            (a.reshape(6, 1, -1).astype(np.int64) - b.reshape(1, 6, -1).astype(np.int64))
            ** 2
        ).sum(axis=2)
        assert (block == direct).all()

    def test_dominates_sad_squared_bound(self, rng):
        """Cauchy-Schwarz: SAD^2 <= P * SSD for P pixels."""
        a = rng.integers(0, 256, size=(4, 4)).astype(np.uint8)
        b = rng.integers(0, 256, size=(4, 4)).astype(np.uint8)
        sad = SADMetric().tile_error(a, b)
        ssd = SSDMetric().tile_error(a, b)
        assert sad * sad <= 16 * ssd


class TestLuminance:
    def test_equal_means_zero(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        a[0, 0] = 80
        b = np.zeros((4, 4), dtype=np.uint8)
        b[3, 3] = 80
        assert LuminanceMetric().tile_error(a, b) == 0

    def test_scaled_mean_difference(self):
        a = np.full((4, 4), 10, dtype=np.uint8)
        b = np.full((4, 4), 14, dtype=np.uint8)
        # |sum difference| = 16 px * 4
        assert LuminanceMetric().tile_error(a, b) == 64

    def test_lower_bounds_sad(self, rng):
        """|sum a - sum b| <= sum|a - b| (triangle inequality)."""
        for _ in range(10):
            a = rng.integers(0, 256, size=(4, 4)).astype(np.uint8)
            b = rng.integers(0, 256, size=(4, 4)).astype(np.uint8)
            assert LuminanceMetric().tile_error(a, b) <= SADMetric().tile_error(a, b)


class TestWeightedColor:
    def test_requires_color_tiles(self):
        with pytest.raises(ValidationError, match="color metric"):
            WeightedColorMetric().prepare(np.zeros((2, 4, 4), dtype=np.uint8))

    def test_weights_applied_per_channel(self):
        a = np.zeros((1, 1, 3), dtype=np.uint8)
        b = np.zeros((1, 1, 3), dtype=np.uint8)
        b[0, 0] = (1, 1, 1)
        metric = WeightedColorMetric(weights=(3, 6, 1))
        assert metric.tile_error(a, b) == 10

    def test_green_weighted_highest_by_default(self):
        base = np.zeros((2, 2, 3), dtype=np.uint8)
        metric = WeightedColorMetric()
        errs = []
        for channel in range(3):
            other = base.copy()
            other[:, :, channel] = 50
            errs.append(metric.tile_error(base, other))
        assert errs[1] == max(errs)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValidationError, match="weights"):
            WeightedColorMetric(weights=(0, 0, 0))
        with pytest.raises(ValidationError, match="weights"):
            WeightedColorMetric(weights=(1, -1, 1))


class TestRowwise:
    """rowwise must equal the diagonal of pairwise for every metric —
    it is what Eq.-(2) evaluation uses instead of slab x slab blocks."""

    @pytest.mark.parametrize(
        "name", ["sad", "ssd", "luminance", "gradient"]
    )
    def test_matches_pairwise_diagonal_gray(self, name, rng):
        metric = get_metric(name)
        tiles_a = rng.integers(0, 256, size=(7, 8, 8)).astype(np.uint8)
        tiles_b = rng.integers(0, 256, size=(7, 8, 8)).astype(np.uint8)
        fa = metric.prepare(tiles_a)
        fb = metric.prepare(tiles_b)
        expected = np.diagonal(metric.pairwise(fa, fb))
        got = metric.rowwise(fa, fb)
        assert got.shape == (7,)
        np.testing.assert_array_equal(got, expected)

    def test_matches_pairwise_diagonal_color(self, rng):
        metric = get_metric("color")
        tiles_a = rng.integers(0, 256, size=(5, 4, 4, 3)).astype(np.uint8)
        tiles_b = rng.integers(0, 256, size=(5, 4, 4, 3)).astype(np.uint8)
        fa = metric.prepare(tiles_a)
        fb = metric.prepare(tiles_b)
        np.testing.assert_array_equal(
            metric.rowwise(fa, fb), np.diagonal(metric.pairwise(fa, fb))
        )

    def test_base_fallback_agrees(self, rng):
        """A metric without a vectorised override still gets correct
        (if slow) rowwise behaviour from the base class."""

        class PlainSAD(SADMetric):
            rowwise = CostMetric.rowwise

        metric = PlainSAD()
        fa = metric.prepare(rng.integers(0, 256, size=(4, 4, 4)).astype(np.uint8))
        fb = metric.prepare(rng.integers(0, 256, size=(4, 4, 4)).astype(np.uint8))
        np.testing.assert_array_equal(
            metric.rowwise(fa, fb), SADMetric().rowwise(fa, fb)
        )
