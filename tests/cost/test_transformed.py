"""Tests for orientation-minimised error matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.matrix import error_matrix
from repro.cost.transformed import transformed_error_matrix
from repro.exceptions import ValidationError
from repro.tiles.transforms import apply_transform


class TestTransformedMatrix:
    def test_lower_bounds_plain_matrix(self, tile_stacks_8x8):
        tiles_in, tiles_tg = tile_stacks_8x8
        plain = error_matrix(tiles_in, tiles_tg)
        best, codes = transformed_error_matrix(tiles_in, tiles_tg)
        assert (best <= plain).all()
        assert codes.shape == best.shape

    def test_codes_achieve_reported_minimum(self, tile_stacks_8x8):
        from repro.cost.sad import SADMetric

        tiles_in, tiles_tg = tile_stacks_8x8
        best, codes = transformed_error_matrix(tiles_in, tiles_tg)
        metric = SADMetric()
        rng = np.random.default_rng(0)
        for _ in range(10):
            u = int(rng.integers(0, tiles_in.shape[0]))
            v = int(rng.integers(0, tiles_in.shape[0]))
            oriented = apply_transform(tiles_in[u], int(codes[u, v]))
            assert metric.tile_error(oriented, tiles_tg[v]) == best[u, v]

    def test_codes_are_true_argmin(self, tile_stacks_8x8):
        from repro.cost.sad import SADMetric

        tiles_in, tiles_tg = tile_stacks_8x8
        best, _ = transformed_error_matrix(tiles_in, tiles_tg)
        metric = SADMetric()
        u, v = 3, 40
        errors = [
            metric.tile_error(apply_transform(tiles_in[u], k), tiles_tg[v])
            for k in range(8)
        ]
        assert best[u, v] == min(errors)

    def test_symmetric_tile_prefers_identity(self):
        """Ties must resolve to orientation 0."""
        flat = np.full((1, 4, 4), 100, dtype=np.uint8)  # invariant under D4
        _, codes = transformed_error_matrix(flat, flat)
        assert codes[0, 0] == 0

    def test_rotated_input_fully_recovered(self):
        """If the input tiles are rotated copies of the targets, the
        minimised diagonal must be exactly zero."""
        rng = np.random.default_rng(1)
        targets = rng.integers(0, 256, size=(6, 8, 8)).astype(np.uint8)
        rotated = np.stack(
            [apply_transform(t, (i % 7) + 1) for i, t in enumerate(targets)]
        )
        best, _ = transformed_error_matrix(rotated, targets)
        assert (np.diag(best) == 0).all()

    def test_rejects_mismatched_stacks(self, tile_stacks_8x8):
        tiles_in, _ = tile_stacks_8x8
        with pytest.raises(ValidationError):
            transformed_error_matrix(tiles_in, tiles_in[:4])


class TestPipelineIntegration:
    def test_transforms_never_hurt_optimal_error(self, small_pair):
        from repro import generate_photomosaic

        inp, tgt = small_pair
        plain = generate_photomosaic(
            inp, tgt, tile_size=8, algorithm="optimization"
        )
        transformed = generate_photomosaic(
            inp, tgt, tile_size=8, algorithm="optimization", allow_transforms=True
        )
        assert transformed.total_error <= plain.total_error
        assert 0.0 <= transformed.meta["transformed_fraction"] <= 1.0

    def test_pixel_multiset_preserved_under_transforms(self, small_pair):
        """Rotating/flipping tiles permutes pixels, never invents them."""
        from repro import generate_photomosaic
        from repro.imaging.histogram import match_histogram

        inp, tgt = small_pair
        result = generate_photomosaic(
            inp, tgt, tile_size=8, algorithm="parallel", allow_transforms=True
        )
        adjusted = match_histogram(inp, tgt)
        assert (np.sort(result.image.ravel()) == np.sort(adjusted.ravel())).all()

    def test_orientations_recorded_per_position(self, small_pair):
        from repro import generate_photomosaic

        inp, tgt = small_pair
        result = generate_photomosaic(
            inp, tgt, tile_size=8, allow_transforms=True
        )
        orientations = result.meta["orientations"]
        assert orientations.shape == (64,)
        assert orientations.min() >= 0
        assert orientations.max() < 8
