"""Cross-solver tests: every exact solver must agree with SciPy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment import get_solver, verify_optimality_certificate
from repro.exceptions import ValidationError

EXACT_SOLVERS = ("scipy", "hungarian", "jv", "auction")
ALL_SOLVERS = EXACT_SOLVERS + ("greedy",)


class TestRegistry:
    @pytest.mark.parametrize("name", ALL_SOLVERS)
    def test_lookup(self, name):
        assert get_solver(name).name == name

    def test_unknown_solver(self):
        with pytest.raises(ValidationError, match="unknown solver"):
            get_solver("blossom5")

    def test_instance_passthrough(self):
        solver = get_solver("jv")
        assert get_solver(solver) is solver


class TestAgreement:
    @pytest.mark.parametrize("name", EXACT_SOLVERS)
    def test_matches_scipy_on_random_matrices(self, name, rng):
        solver = get_solver(name)
        reference = get_solver("scipy")
        for _ in range(15):
            n = int(rng.integers(1, 30))
            m = rng.integers(0, 1000, size=(n, n)).astype(np.int64)
            assert solver.solve(m).total == reference.solve(m).total

    @pytest.mark.parametrize("name", EXACT_SOLVERS)
    def test_on_real_error_matrix(self, name, small_error_matrix):
        reference = get_solver("scipy").solve(small_error_matrix).total
        assert get_solver(name).solve(small_error_matrix).total == reference

    @pytest.mark.parametrize("name", EXACT_SOLVERS)
    def test_with_many_ties(self, name, rng):
        """Degenerate matrices with few distinct values stress tie-breaking."""
        for _ in range(8):
            n = int(rng.integers(2, 20))
            m = rng.integers(0, 3, size=(n, n)).astype(np.int64)
            assert (
                get_solver(name).solve(m).total == get_solver("scipy").solve(m).total
            )

    @pytest.mark.parametrize("name", EXACT_SOLVERS)
    def test_large_weights(self, name, rng):
        """Weights near the SAD maximum (2048^2 image, 64 tiles): no overflow."""
        n = 12
        m = rng.integers(0, 255 * 32 * 32, size=(n, n)).astype(np.int64)
        assert get_solver(name).solve(m).total == get_solver("scipy").solve(m).total


class TestResultShape:
    @pytest.mark.parametrize("name", ALL_SOLVERS)
    def test_permutation_is_valid(self, name, random_matrix):
        result = get_solver(name).solve(random_matrix)
        n = random_matrix.shape[0]
        assert (np.sort(result.permutation) == np.arange(n)).all()

    @pytest.mark.parametrize("name", ALL_SOLVERS)
    def test_total_consistent(self, name, random_matrix):
        result = get_solver(name).solve(random_matrix)
        n = random_matrix.shape[0]
        assert result.total == int(
            random_matrix[result.permutation, np.arange(n)].sum()
        )

    @pytest.mark.parametrize("name", ALL_SOLVERS)
    def test_n1(self, name):
        result = get_solver(name).solve(np.array([[7]], dtype=np.int64))
        assert result.total == 7
        assert result.permutation.tolist() == [0]

    @pytest.mark.parametrize("name", ALL_SOLVERS)
    def test_zero_matrix(self, name):
        result = get_solver(name).solve(np.zeros((6, 6), dtype=np.int64))
        assert result.total == 0

    @pytest.mark.parametrize("name", EXACT_SOLVERS)
    def test_identity_optimal_matrix(self, name):
        """Diagonal strictly cheapest: identity is the unique optimum."""
        n = 8
        m = np.full((n, n), 100, dtype=np.int64)
        np.fill_diagonal(m, 1)
        result = get_solver(name).solve(m)
        assert result.total == n
        assert (result.permutation == np.arange(n)).all()

    @pytest.mark.parametrize("name", EXACT_SOLVERS)
    def test_anti_diagonal_optimum(self, name):
        n = 7
        m = np.full((n, n), 50, dtype=np.int64)
        for i in range(n):
            m[i, n - 1 - i] = 0
        result = get_solver(name).solve(m)
        assert result.total == 0
        assert (result.permutation == np.arange(n)[::-1]).all()


class TestCertificates:
    @pytest.mark.parametrize("name", ["hungarian", "jv"])
    def test_duals_certify_optimality(self, name, rng):
        for _ in range(10):
            n = int(rng.integers(1, 25))
            m = rng.integers(0, 500, size=(n, n)).astype(np.int64)
            result = get_solver(name).solve(m)
            assert verify_optimality_certificate(result, m)

    def test_scipy_carries_no_duals(self, random_matrix):
        result = get_solver("scipy").solve(random_matrix)
        assert not verify_optimality_certificate(result, random_matrix)


class TestGreedyBaseline:
    def test_never_beats_optimal(self, rng):
        for _ in range(10):
            n = int(rng.integers(2, 25))
            m = rng.integers(0, 1000, size=(n, n)).astype(np.int64)
            assert (
                get_solver("greedy").solve(m).total
                >= get_solver("scipy").solve(m).total
            )

    def test_flags_not_optimal(self, random_matrix):
        assert get_solver("greedy").solve(random_matrix).optimal is False

    def test_known_suboptimal_instance(self):
        # Greedy takes (0,0)=1 and is then forced into 100; optimal is 2+3.
        m = np.array([[1, 2], [3, 100]], dtype=np.int64)
        assert get_solver("greedy").solve(m).total == 101
        assert get_solver("scipy").solve(m).total == 5
