"""Hungarian- and JV-specific structural tests."""

from __future__ import annotations

import numpy as np

from repro.assignment.hungarian import HungarianSolver
from repro.assignment.jonker_volgenant import JonkerVolgenantSolver


class TestHungarian:
    def test_iterations_equals_n(self, random_matrix):
        """One augmentation per row insertion."""
        result = HungarianSolver().solve(random_matrix)
        assert result.iterations == random_matrix.shape[0]

    def test_duals_are_integers(self, random_matrix):
        result = HungarianSolver().solve(random_matrix)
        assert result.dual_row.dtype == np.int64
        assert result.dual_col.dtype == np.int64

    def test_dual_objective_equals_primal(self, random_matrix):
        result = HungarianSolver().solve(random_matrix)
        assert int(result.dual_row.sum() + result.dual_col.sum()) == result.total


class TestJonkerVolgenant:
    def test_column_reduction_solves_easy_instances_alone(self):
        """A matrix whose column minima sit in distinct rows needs no phase 3."""
        m = np.full((5, 5), 100, dtype=np.int64)
        np.fill_diagonal(m, 1)
        result = JonkerVolgenantSolver().solve(m)
        assert result.total == 5
        assert result.iterations == 0  # no augmentation scans needed

    def test_duals_feasible(self, random_matrix):
        result = JonkerVolgenantSolver().solve(random_matrix)
        slack = (
            random_matrix
            - result.dual_row[:, None]
            - result.dual_col[None, :]
        )
        assert (slack >= 0).all()

    def test_hard_instance_exercises_augmentation(self, rng):
        """Rank-deficient-ish costs force free rows into phase 3."""
        n = 30
        base = rng.integers(0, 5, size=(n, 1)).astype(np.int64)
        m = np.broadcast_to(base, (n, n)).copy()  # every column identical
        m += rng.integers(0, 2, size=(n, n)).astype(np.int64)
        from repro.assignment import get_solver

        assert (
            JonkerVolgenantSolver().solve(m).total == get_solver("scipy").solve(m).total
        )

    def test_asymmetric_structure(self, rng):
        """Block-structured costs where greedy column reduction collides."""
        n = 16
        m = np.zeros((n, n), dtype=np.int64)
        m[: n // 2] = 1  # first half of rows cheap everywhere
        m[n // 2 :] = rng.integers(100, 200, size=(n // 2, n)).astype(np.int64)
        from repro.assignment import get_solver

        assert (
            JonkerVolgenantSolver().solve(m).total == get_solver("scipy").solve(m).total
        )
