"""Tests for the blossom-based solver (the paper's solver family)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment import get_solver
from repro.assignment.blossom import BlossomSolver
from repro.exceptions import ValidationError


class TestBlossom:
    def test_registered(self):
        assert get_solver("blossom").name == "blossom"

    def test_matches_lap_solvers_on_random(self, rng):
        """The paper's reduction: on the bipartite tile graph, Blossom and
        the assignment solvers must find the same minimum."""
        solver = BlossomSolver()
        reference = get_solver("scipy")
        for _ in range(10):
            n = int(rng.integers(1, 16))
            m = rng.integers(0, 1000, size=(n, n)).astype(np.int64)
            assert solver.solve(m).total == reference.solve(m).total

    def test_matches_oracle_on_tiny(self, rng):
        from repro.assignment.bruteforce import BruteForceSolver

        for _ in range(8):
            n = int(rng.integers(1, 6))
            m = rng.integers(0, 200, size=(n, n)).astype(np.int64)
            assert (
                BlossomSolver().solve(m).total == BruteForceSolver().solve(m).total
            )

    def test_on_real_error_matrix(self, small_error_matrix):
        blossom = BlossomSolver().solve(small_error_matrix)
        scipy_result = get_solver("scipy").solve(small_error_matrix)
        assert blossom.total == scipy_result.total

    def test_permutation_valid(self, rng):
        m = rng.integers(0, 100, size=(12, 12)).astype(np.int64)
        result = BlossomSolver().solve(m)
        assert (np.sort(result.permutation) == np.arange(12)).all()

    def test_ties_handled(self):
        m = np.zeros((8, 8), dtype=np.int64)  # fully degenerate
        assert BlossomSolver().solve(m).total == 0

    def test_size_limit_enforced(self):
        solver = BlossomSolver(size_limit=4)
        with pytest.raises(ValidationError, match="limited"):
            solver.solve(np.zeros((5, 5), dtype=np.int64))

    def test_bad_limit(self):
        with pytest.raises(ValidationError):
            BlossomSolver(size_limit=0)
