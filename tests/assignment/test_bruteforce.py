"""Tests for the exhaustive oracle (the paper's S! method)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.assignment import get_solver
from repro.assignment.bruteforce import BruteForceSolver
from repro.exceptions import ValidationError


class TestOracle:
    def test_evaluates_all_permutations(self, rng):
        n = 5
        m = rng.integers(0, 100, size=(n, n)).astype(np.int64)
        result = BruteForceSolver().solve(m)
        assert result.iterations == math.factorial(n)

    @pytest.mark.parametrize("name", ["scipy", "hungarian", "jv", "auction"])
    def test_fast_solvers_match_oracle(self, name, rng):
        """The decisive optimality test: nothing here trusts a fast solver."""
        solver = get_solver(name)
        for _ in range(15):
            n = int(rng.integers(1, 7))
            m = rng.integers(0, 200, size=(n, n)).astype(np.int64)
            assert solver.solve(m).total == BruteForceSolver().solve(m).total

    def test_local_search_oracle_gap(self, rng):
        """2-opt can be strictly above the S! optimum — verify the direction."""
        from repro.localsearch import local_search_serial

        gaps = []
        for trial in range(10):
            n = 6
            m = rng.integers(0, 100, size=(n, n)).astype(np.int64)
            oracle = BruteForceSolver().solve(m).total
            approx = local_search_serial(m).total
            assert approx >= oracle
            gaps.append(approx - oracle)
        assert any(g == 0 for g in gaps)  # small instances usually solved


class TestGuardrails:
    def test_size_limit_enforced(self):
        m = np.zeros((10, 10), dtype=np.int64)
        with pytest.raises(ValidationError, match="brute force limited"):
            BruteForceSolver().solve(m)

    def test_limit_configurable(self):
        m = np.zeros((3, 3), dtype=np.int64)
        with pytest.raises(ValidationError):
            BruteForceSolver(factorial_limit=2).solve(m)

    def test_bad_limit(self):
        with pytest.raises(ValidationError):
            BruteForceSolver(factorial_limit=0)

    def test_registered(self):
        assert get_solver("bruteforce").name == "bruteforce"
