"""Tests for rectangular assignment."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.assignment.rectangular import solve_rectangular
from repro.exceptions import ValidationError


class TestCorrectness:
    def test_matches_scipy_rectangular(self, rng):
        for _ in range(20):
            rows = int(rng.integers(1, 25))
            cols = int(rng.integers(1, rows + 1))
            costs = rng.integers(0, 1000, size=(rows, cols)).astype(np.int64)
            choice, total = solve_rectangular(costs)
            ref_rows, ref_cols = linear_sum_assignment(costs)
            assert total == int(costs[ref_rows, ref_cols].sum())

    def test_choice_is_injective(self, rng):
        costs = rng.integers(0, 100, size=(12, 7)).astype(np.int64)
        choice, _ = solve_rectangular(costs)
        assert len(np.unique(choice)) == choice.size

    def test_total_matches_choice(self, rng):
        costs = rng.integers(0, 100, size=(10, 6)).astype(np.int64)
        choice, total = solve_rectangular(costs)
        assert total == int(costs[choice, np.arange(6)].sum())

    def test_square_case_equals_solver(self, random_matrix):
        from repro.assignment import get_solver

        choice, total = solve_rectangular(random_matrix)
        assert total == get_solver("scipy").solve(random_matrix).total

    def test_single_column(self):
        costs = np.array([[5], [2], [9]], dtype=np.int64)
        choice, total = solve_rectangular(costs)
        assert choice.tolist() == [1]
        assert total == 2

    @pytest.mark.parametrize("solver", ["scipy", "jv", "hungarian"])
    def test_any_backing_solver(self, solver, rng):
        costs = rng.integers(0, 500, size=(15, 9)).astype(np.int64)
        _, total = solve_rectangular(costs, solver=solver)
        ref_rows, ref_cols = linear_sum_assignment(costs)
        assert total == int(costs[ref_rows, ref_cols].sum())


class TestValidation:
    def test_rejects_more_cols_than_rows(self):
        with pytest.raises(ValidationError, match="rows >= cols"):
            solve_rectangular(np.zeros((2, 3), dtype=np.int64))

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="non-negative"):
            solve_rectangular(np.array([[-1, 2], [3, 4]], dtype=np.int64))

    def test_rejects_float(self):
        with pytest.raises(ValidationError, match="integer"):
            solve_rectangular(np.zeros((3, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValidationError, match="2-D"):
            solve_rectangular(np.zeros(5, dtype=np.int64))
