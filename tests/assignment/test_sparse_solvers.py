"""Sparse-input behaviour of the assignment solvers.

Every registered solver accepts a :class:`SparseErrorMatrix` through
``solve_sparse``: complete inputs must reproduce the dense solve bit for
bit, incomplete inputs must yield a valid permutation whose reported
total is the exact Eq. (2) value, and rows the shortlist cannot serve
must fall back to dense scoring (counted in ``meta["sparse"]``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment.base import available_solvers
from repro.assignment import get_solver
from repro.cost import error_matrix, sparse_error_matrix
from repro.cost.sparse import SparseErrorMatrix
from repro.imaging import standard_image
from repro.tiles.grid import TileGrid

SOLVERS = ("greedy", "scipy", "auction", "jv", "hungarian")


@pytest.fixture(scope="module")
def stacks():
    grid = TileGrid(64, 64, 8)
    return (
        grid.split(standard_image("portrait", 64)),
        grid.split(standard_image("sailboat", 64)),
    )


@pytest.fixture(scope="module")
def sparse_16(stacks):
    return sparse_error_matrix(*stacks, top_k=16, seed=4)


@pytest.fixture(scope="module")
def dense(stacks):
    return error_matrix(*stacks)


def test_case_covers_all_registered_solvers():
    assert set(SOLVERS) <= set(available_solvers())


@pytest.mark.parametrize("name", SOLVERS)
def test_complete_sparse_matches_dense_solve(name, stacks, dense):
    complete = sparse_error_matrix(*stacks, top_k=dense.shape[0], seed=4)
    dense_result = get_solver(name).solve(dense)
    sparse_result = get_solver(name).solve_sparse(complete)
    np.testing.assert_array_equal(
        sparse_result.permutation, dense_result.permutation
    )
    assert sparse_result.total == dense_result.total
    assert sparse_result.meta["sparse"]["complete"] is True
    assert sparse_result.meta["sparse"]["fallback"] == 0


@pytest.mark.parametrize("name", SOLVERS)
def test_incomplete_sparse_yields_exact_total(name, sparse_16, dense):
    result = get_solver(name).solve_sparse(sparse_16)
    perm = result.permutation
    s = dense.shape[0]
    assert sorted(perm.tolist()) == list(range(s))
    assert result.total == int(dense[perm, np.arange(s)].sum())
    assert result.optimal is False
    meta = result.meta["sparse"]
    assert meta["top_k"] == 16
    assert meta["fallback"] >= 0
    assert meta["pairs_evaluated"] == s * 16


@pytest.mark.parametrize("name", SOLVERS)
def test_incomplete_sparse_close_to_dense_optimum(name, sparse_16, dense):
    """On natural images the shortlist barely costs quality: every
    solver's sparse total stays within 15% of the dense optimum."""
    optimum = get_solver("scipy").solve(dense).total
    result = get_solver(name).solve_sparse(sparse_16)
    assert result.total <= 1.15 * optimum


def test_fallback_rows_are_exact_scored():
    """Force infeasibility: every row shortlists only columns {0, 1, 2},
    so one assignment must land on column 3 as a fallback — and the
    reported total must use the metric's true cost of that edge (via the
    retained features), not the sentinel."""
    from repro.cost import get_metric

    grid = TileGrid(16, 16, 8)  # 4 tiles of 8x8
    tiles = grid.split(standard_image("portrait", 16))
    metric = get_metric("sad")
    features = metric.prepare(tiles)
    costs = metric.pairwise(features, features)[:, :3]
    sparse = SparseErrorMatrix(
        indices=np.broadcast_to(
            np.array([0, 1, 2], dtype=np.int64), (4, 3)
        ).copy(),
        costs=costs,
        metric_name="sad",
        features_in=features,
        features_tg=features,
    )
    result = get_solver("scipy").solve_sparse(sparse)
    meta = result.meta["sparse"]
    assert meta["fallback"] == 1  # 4 rows, only 3 shortlisted columns
    assert meta["exact_fallback"] is True
    perm = result.permutation
    assert sorted(perm.tolist()) == [0, 1, 2, 3]
    dense = metric.pairwise(features, features)
    assert result.total == int(dense[perm, np.arange(4)].sum())


def test_feature_less_sparse_falls_back_to_sentinel_totals():
    """from_dense matrices carry no features; fallback edges then keep
    the sentinel cost and meta flags exact_fallback=False."""
    matrix = np.array(
        [[1, 50, 50], [2, 50, 50], [3, 50, 50]], dtype=np.int64
    )
    sparse = SparseErrorMatrix.from_dense(matrix, 1)
    result = get_solver("scipy").solve_sparse(sparse)
    meta = result.meta["sparse"]
    assert meta["fallback"] == 2
    assert meta["exact_fallback"] is False


def test_greedy_native_scan_matches_default_densified_path(sparse_16):
    """GreedySolver's native S*k scan visits shortlisted pairs in the
    dense argsort order, so while the shortlist can serve every row the
    two code paths pick identical assignments.  (Fallback rows may
    legitimately differ: the native path exact-scores the leftover block
    where the densified path ties-breaks among equal sentinels.)"""
    from repro.assignment.base import AssignmentSolver

    greedy = get_solver("greedy")
    native = greedy.solve_sparse(sparse_16)
    densified = AssignmentSolver.solve_sparse(greedy, sparse_16)
    if densified.meta["sparse"]["fallback"] == 0:
        np.testing.assert_array_equal(
            native.permutation, densified.permutation
        )
        assert native.total == densified.total
    else:
        # Exact-scored fallback never does worse than sentinel tie-break.
        assert native.total <= densified.total
