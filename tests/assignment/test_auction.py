"""Auction-solver specifics (epsilon-scaling behaviour)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment.auction import AuctionSolver
from repro.assignment import get_solver
from repro.exceptions import SolverError, ValidationError


def test_scaling_factor_validated():
    with pytest.raises(ValidationError, match="scaling_factor"):
        AuctionSolver(scaling_factor=1)


def test_round_budget_enforced():
    solver = AuctionSolver(max_rounds=1)
    m = np.arange(9, dtype=np.int64).reshape(3, 3)
    with pytest.raises(SolverError, match="rounds"):
        solver.solve(m)


@pytest.mark.parametrize("scaling", [2, 5, 10])
def test_any_scaling_factor_is_exact(scaling, rng):
    solver = AuctionSolver(scaling_factor=scaling)
    reference = get_solver("scipy")
    for _ in range(6):
        n = int(rng.integers(2, 20))
        m = rng.integers(0, 500, size=(n, n)).astype(np.int64)
        assert solver.solve(m).total == reference.solve(m).total


def test_meta_reports_phases(random_matrix):
    result = AuctionSolver().solve(random_matrix)
    assert result.meta["epsilon_phases"] >= 1
    assert result.iterations > 0


def test_constant_matrix():
    """All costs equal: every permutation optimal; auction must terminate."""
    m = np.full((10, 10), 42, dtype=np.int64)
    assert AuctionSolver().solve(m).total == 420
