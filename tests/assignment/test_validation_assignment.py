"""Tests for result validation and duality certificates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment.base import AssignmentResult
from repro.assignment.validation import check_result, verify_optimality_certificate
from repro.exceptions import SolverError


def _result(perm, total, dual_row=None, dual_col=None):
    return AssignmentResult(
        permutation=np.asarray(perm, dtype=np.intp),
        total=total,
        optimal=True,
        dual_row=None if dual_row is None else np.asarray(dual_row, dtype=np.int64),
        dual_col=None if dual_col is None else np.asarray(dual_col, dtype=np.int64),
    )


MATRIX = np.array([[1, 5], [7, 2]], dtype=np.int64)


class TestCheckResult:
    def test_accepts_consistent(self):
        check_result(_result([0, 1], 3), MATRIX)

    def test_rejects_wrong_total(self):
        with pytest.raises(SolverError, match="total"):
            check_result(_result([0, 1], 4), MATRIX)


class TestCertificate:
    def test_valid_certificate(self):
        # duals: row (1, 2), col (0, 0): tight on diagonal, feasible off it.
        result = _result([0, 1], 3, dual_row=[1, 2], dual_col=[0, 0])
        assert verify_optimality_certificate(result, MATRIX)

    def test_no_duals_returns_false(self):
        assert not verify_optimality_certificate(_result([0, 1], 3), MATRIX)

    def test_infeasible_duals_raise(self):
        result = _result([0, 1], 3, dual_row=[10, 2], dual_col=[0, 0])
        with pytest.raises(SolverError, match="infeasible"):
            verify_optimality_certificate(result, MATRIX)

    def test_non_tight_matched_edge_raises(self):
        # Feasible but not tight on matched edges -> certificate broken.
        result = _result([0, 1], 3, dual_row=[0, 1], dual_col=[0, 0])
        with pytest.raises(SolverError, match="tight"):
            verify_optimality_certificate(result, MATRIX)

    def test_wrong_dual_shape_raises(self):
        result = _result([0, 1], 3, dual_row=[1], dual_col=[0, 0])
        with pytest.raises(SolverError, match="shape"):
            verify_optimality_certificate(result, MATRIX)
