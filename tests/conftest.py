"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging.synthetic import standard_image, synthetic_image
from repro.tiles.grid import TileGrid


#: The single seed every test RNG derives from.  Tests never call
#: ``np.random`` directly — randomness flows through the ``rng`` fixture
#: (``benchmarks/conftest.py`` mirrors this with the same seed), so the
#: whole suite replays bit-identically.
TEST_SEED = 12345


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need randomness draw from this."""
    return np.random.default_rng(TEST_SEED)


@pytest.fixture(scope="session")
def portrait_64() -> np.ndarray:
    return standard_image("portrait", 64)


@pytest.fixture(scope="session")
def sailboat_64() -> np.ndarray:
    return standard_image("sailboat", 64)


@pytest.fixture(scope="session")
def small_pair() -> tuple[np.ndarray, np.ndarray]:
    """A 64x64 (input, target) pair."""
    return standard_image("portrait", 64), standard_image("sailboat", 64)


@pytest.fixture(scope="session")
def tile_stacks_8x8() -> tuple[np.ndarray, np.ndarray]:
    """Tile stacks with S=64 tiles of 8x8 px from the 64x64 pair."""
    grid = TileGrid.from_tile_count(64, 8)
    return (
        grid.split(standard_image("portrait", 64)),
        grid.split(standard_image("sailboat", 64)),
    )


@pytest.fixture()
def random_matrix(rng: np.random.Generator) -> np.ndarray:
    """A random 24x24 integer error matrix."""
    return rng.integers(0, 10_000, size=(24, 24)).astype(np.int64)


@pytest.fixture(scope="session")
def small_error_matrix() -> np.ndarray:
    """Deterministic 64x64 error matrix from the real pipeline."""
    from repro.cost.matrix import error_matrix

    grid = TileGrid.from_tile_count(64, 8)
    return error_matrix(
        grid.split(standard_image("portrait", 64)),
        grid.split(standard_image("sailboat", 64)),
    )


@pytest.fixture()
def noisy_image(rng: np.random.Generator) -> np.ndarray:
    return synthetic_image(48, seed=rng, smoothness=0.2)
