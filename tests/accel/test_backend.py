"""Tests for the pluggable array-backend registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel import backend as backend_mod
from repro.accel.backend import (
    ArrayBackend,
    BackendUnavailable,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
)


@pytest.fixture()
def scratch_registry():
    """Register test backends without polluting the process-wide registry."""
    registered: list[str] = []

    def register(name, loader):
        register_backend(name, loader)
        registered.append(name)

    yield register
    with backend_mod._LOCK:
        for name in registered:
            backend_mod._LOADERS.pop(name, None)
            backend_mod._CACHE.pop(name, None)


class TestResolution:
    def test_none_is_numpy(self):
        xb = get_backend(None)
        assert xb.name == "numpy"
        assert xb.xp is np
        assert xb.is_numpy

    def test_numpy_by_name(self):
        assert get_backend("numpy").xp is np

    def test_instance_passes_through(self):
        xb = get_backend("numpy")
        assert get_backend(xb) is xb

    def test_unknown_name(self):
        with pytest.raises(BackendUnavailable, match="unknown array backend"):
            get_backend("tpu")

    def test_auto_never_fails(self):
        xb = get_backend("auto")
        assert xb.name in ("numpy", "cupy")

    def test_resolution_is_cached(self):
        assert get_backend("numpy") is get_backend("numpy")


class TestRegistry:
    def test_names_include_auto_and_numpy(self):
        names = backend_names()
        assert "auto" in names
        assert "numpy" in names
        assert "cupy" in names

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_loader_runs_once(self, scratch_registry):
        calls = []

        def loader():
            calls.append(1)
            return ArrayBackend(
                name="fake", xp=np, asarray=np.asarray, to_numpy=np.asarray
            )

        scratch_registry("fake", loader)
        first = get_backend("fake")
        second = get_backend("fake")
        assert first is second
        assert len(calls) == 1

    def test_unavailable_loader_propagates(self, scratch_registry):
        def loader():
            raise BackendUnavailable("no device")

        scratch_registry("broken", loader)
        with pytest.raises(BackendUnavailable, match="no device"):
            get_backend("broken")
        # Not listed as usable, but still registered by name.
        assert "broken" not in available_backends()
        assert "broken" in backend_names()

    def test_reregistering_clears_cache(self, scratch_registry):
        scratch_registry(
            "swapme",
            lambda: ArrayBackend(
                name="v1", xp=np, asarray=np.asarray, to_numpy=np.asarray
            ),
        )
        assert get_backend("swapme").name == "v1"
        scratch_registry(
            "swapme",
            lambda: ArrayBackend(
                name="v2", xp=np, asarray=np.asarray, to_numpy=np.asarray
            ),
        )
        assert get_backend("swapme").name == "v2"


class TestNumpyBackendConversions:
    def test_asarray_no_copy(self):
        xb = get_backend("numpy")
        array = np.arange(6.0)
        assert xb.asarray(array) is array
        assert xb.to_numpy(array) is array

    def test_synchronize_is_noop(self):
        get_backend("numpy").synchronize()


def _cupy_or_skip() -> ArrayBackend:
    try:
        return get_backend("cupy")
    except BackendUnavailable as exc:
        pytest.skip(f"cupy backend unavailable: {exc}")


class TestCupyIfPresent:
    """Exercised only on machines with a working CuPy + CUDA device."""

    def test_roundtrip(self):
        xb = _cupy_or_skip()
        host = np.arange(12, dtype=np.int64).reshape(3, 4)
        device = xb.asarray(host)
        back = xb.to_numpy(device)
        np.testing.assert_array_equal(back, host)

    def test_error_matrix_matches_numpy(self, tile_stacks_8x8):
        xb = _cupy_or_skip()
        from repro.cost.matrix import error_matrix

        tiles_in, tiles_tg = tile_stacks_8x8
        cpu = error_matrix(tiles_in, tiles_tg)
        gpu = error_matrix(tiles_in, tiles_tg, backend=xb)
        np.testing.assert_array_equal(cpu, gpu)
