"""Tests for the shared-memory fan-out plane and leak reaper."""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.accel.shm import (
    SHM_PREFIX,
    SharedArrayHandle,
    SharedArrayPlane,
    attach_shared_array,
    reap_stale_segments,
    shared_memory_available,
)
from repro.service.metrics import MetricsRegistry

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no multiprocessing.shared_memory"
)


class TestRoundTrip:
    def test_publish_attach_equality(self, rng):
        array = rng.integers(0, 1000, size=(37, 11)).astype(np.int64)
        with SharedArrayPlane() as plane:
            handle = plane.publish("roundtrip", array)
            view = attach_shared_array(handle)
            np.testing.assert_array_equal(view, array)

    def test_view_is_read_only(self):
        with SharedArrayPlane() as plane:
            handle = plane.publish("ro", np.arange(4))
            view = attach_shared_array(handle)
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0] = 99

    def test_attachments_are_cached(self):
        with SharedArrayPlane() as plane:
            handle = plane.publish("cached", np.arange(8))
            assert attach_shared_array(handle) is attach_shared_array(handle)

    def test_noncontiguous_input_is_published_contiguously(self):
        array = np.arange(24).reshape(4, 6)[:, ::2]
        with SharedArrayPlane() as plane:
            handle = plane.publish("strided", array)
            np.testing.assert_array_equal(attach_shared_array(handle), array)


class TestHandle:
    def test_pickle_is_tiny_regardless_of_payload(self):
        """The whole point: N workers receive ~100 bytes, not the array."""
        array = np.zeros((512, 512), dtype=np.float64)  # 2 MiB payload
        with SharedArrayPlane() as plane:
            handle = plane.publish("big", array)
            wire = pickle.dumps(handle)
            assert len(wire) < 512
            assert array.nbytes // len(wire) > 1000
            rehydrated = pickle.loads(wire)
            assert rehydrated == handle

    def test_nbytes(self):
        handle = SharedArrayHandle(name="x", shape=(3, 5), dtype="<i8")
        assert handle.nbytes == 3 * 5 * 8


class TestLifecycle:
    def test_close_unlinks_segments(self):
        plane = SharedArrayPlane()
        handle = plane.publish("gone", np.arange(16))
        plane.close()
        with pytest.raises(FileNotFoundError):
            from multiprocessing import shared_memory

            shared_memory.SharedMemory(name=handle.name)

    def test_close_is_idempotent(self):
        plane = SharedArrayPlane()
        plane.publish("twice", np.arange(4))
        plane.close()
        plane.close()
        assert plane.closed

    def test_publish_after_close_raises_and_leaks_nothing(self):
        plane = SharedArrayPlane()
        plane.close()
        with pytest.raises(RuntimeError, match="closed"):
            plane.publish("late", np.arange(4))

    def test_context_manager_closes_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with SharedArrayPlane() as plane:
                handle = plane.publish("err", np.arange(4))
                raise RuntimeError("boom")
        assert plane.closed
        with pytest.raises(FileNotFoundError):
            from multiprocessing import shared_memory

            shared_memory.SharedMemory(name=handle.name)

    def test_publish_metrics(self):
        metrics = MetricsRegistry()
        with SharedArrayPlane(metrics=metrics) as plane:
            plane.publish("metered", np.zeros(100, dtype=np.uint8))
        assert metrics.counter("shm_published_bytes_total").value == 100


def _noop() -> None:
    pass


def _dead_pid() -> int:
    """PID of a process that is guaranteed to have exited."""
    proc = multiprocessing.Process(target=_noop)
    proc.start()
    proc.join()
    return proc.pid


class TestReaper:
    def test_reaps_segment_of_dead_owner(self):
        from multiprocessing import shared_memory

        name = f"{SHM_PREFIX}-{_dead_pid()}-1-orphan"
        segment = shared_memory.SharedMemory(name=name, create=True, size=64)
        segment.close()
        metrics = MetricsRegistry()
        assert reap_stale_segments(metrics) >= 1
        assert metrics.counter("shm_leaked_total").value >= 1
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_spares_live_owner(self):
        with SharedArrayPlane() as plane:
            handle = plane.publish("alive", np.arange(4))
            reap_stale_segments()
            # Our own segment (live PID) must survive the reap.
            np.testing.assert_array_equal(
                attach_shared_array(handle), np.arange(4)
            )

    def test_ignores_foreign_names(self, tmp_path):
        (tmp_path / "unrelated-123-file").write_bytes(b"x")
        assert reap_stale_segments(shm_dir=str(tmp_path)) == 0

    def test_missing_dir_is_zero(self):
        assert reap_stale_segments(shm_dir="/nonexistent-shm-dir") == 0


class TestParallelMatrixFanOut:
    def test_share_memory_matches_pickled(self, tile_stacks_8x8):
        from repro.cost.matrix import error_matrix
        from repro.cost.parallel_matrix import error_matrix_parallel

        tiles_in, tiles_tg = tile_stacks_8x8
        expected = error_matrix(tiles_in, tiles_tg)
        shared = error_matrix_parallel(
            tiles_in, tiles_tg, workers=2, force=True, share_memory=True
        )
        pickled = error_matrix_parallel(
            tiles_in, tiles_tg, workers=2, force=True, share_memory=False
        )
        np.testing.assert_array_equal(shared, expected)
        np.testing.assert_array_equal(pickled, expected)

    def test_share_memory_leaves_no_segments(self, tile_stacks_8x8):
        import os

        tiles_in, tiles_tg = tile_stacks_8x8
        from repro.cost.parallel_matrix import error_matrix_parallel

        error_matrix_parallel(
            tiles_in, tiles_tg, workers=2, force=True, share_memory=True
        )
        if os.path.isdir("/dev/shm"):
            mine = [
                entry
                for entry in os.listdir("/dev/shm")
                if entry.startswith(f"{SHM_PREFIX}-{os.getpid()}-")
            ]
            assert mine == []
