"""Unit tests for the active-pair sweep pruner."""

from __future__ import annotations

import numpy as np

from repro.accel.dirty import ClassPruner, SweepPruner


class TestFirstSweep:
    def test_everything_live_initially(self):
        pruner = SweepPruner(8)
        assert pruner.live.all()
        assert pruner.pairs_evaluated == 0
        assert pruner.pairs_skipped == 0

    def test_select_keeps_all_pairs(self):
        pruner = SweepPruner(8)
        us = np.array([0, 2, 4])
        vs = np.array([1, 3, 5])
        kept_us, kept_vs = pruner.select(us, vs)
        assert kept_us is us and kept_vs is vs
        assert pruner.pairs_evaluated == 3
        assert pruner.pairs_skipped == 0


class TestRolling:
    def test_end_sweep_keeps_only_marked(self):
        pruner = SweepPruner(6)
        pruner.mark(np.array([1]), np.array([4]))
        pruner.end_sweep()
        expected = np.array([False, True, False, False, True, False])
        np.testing.assert_array_equal(pruner.live, expected)

    def test_clean_pairs_are_skipped_after_roll(self):
        pruner = SweepPruner(6)
        pruner.mark(np.array([1]), np.array([4]))
        pruner.end_sweep()
        us = np.array([0, 1, 2])
        vs = np.array([3, 2, 5])
        kept_us, kept_vs = pruner.select(us, vs)
        # Only (1, 2) has a dirty endpoint.
        np.testing.assert_array_equal(kept_us, [1])
        np.testing.assert_array_equal(kept_vs, [2])
        assert pruner.pairs_evaluated == 1
        assert pruner.pairs_skipped == 2

    def test_mark_is_live_within_the_same_sweep(self):
        """A commit must dirty its endpoints for the *rest of this sweep*,
        not only the next one — later colour classes see fresh tiles."""
        pruner = SweepPruner(4)
        pruner.end_sweep()  # nothing marked: everything clean now
        assert not pruner.live.any()
        pruner.mark(np.array([0]), np.array([3]))
        us, vs = pruner.select(np.array([0, 1]), np.array([2, 2]))
        np.testing.assert_array_equal(us, [0])
        np.testing.assert_array_equal(vs, [2])

    def test_mark_survives_exactly_one_roll(self):
        pruner = SweepPruner(4)
        pruner.mark_pair(2, 3)
        pruner.end_sweep()
        assert pruner.live[2] and pruner.live[3]
        pruner.end_sweep()
        assert not pruner.live.any()


class TestAccounting:
    def test_mark_pair_matches_mark(self):
        vector = SweepPruner(5)
        scalar = SweepPruner(5)
        vector.mark(np.array([1, 2]), np.array([3, 4]))
        scalar.mark_pair(1, 3)
        scalar.mark_pair(2, 4)
        np.testing.assert_array_equal(vector.live, scalar.live)
        vector.end_sweep()
        scalar.end_sweep()
        np.testing.assert_array_equal(vector.live, scalar.live)

    def test_count_adds_externally_selected(self):
        pruner = SweepPruner(4)
        pruner.count(10, 6)
        assert pruner.pairs_evaluated == 10
        assert pruner.pairs_skipped == 6

    def test_stats_are_plain_ints(self):
        pruner = SweepPruner(4)
        pruner.select(np.array([0]), np.array([1]))
        stats = pruner.stats()
        assert stats == {"pairs_evaluated": 1, "pairs_skipped": 0}
        assert all(type(v) is int for v in stats.values())

    def test_sweep_counter(self):
        pruner = SweepPruner(4)
        assert pruner.sweeps == 0
        pruner.end_sweep()
        pruner.end_sweep()
        assert pruner.sweeps == 2


class TestClassPruner:
    def test_first_sweep_evaluates_everything(self):
        pruner = ClassPruner(8)
        us = np.array([0, 2, 4])
        vs = np.array([1, 3, 5])
        kept_us, kept_vs = pruner.select(0, us, vs)
        np.testing.assert_array_equal(kept_us, us)
        np.testing.assert_array_equal(kept_vs, vs)
        assert pruner.pairs_evaluated == 3

    def test_untouched_pairs_skip_next_sweep(self):
        pruner = ClassPruner(6)
        us, vs = np.array([0, 2, 4]), np.array([1, 3, 5])
        pruner.select(0, us, vs)  # sweep 1: all evaluated, nothing committed
        kept_us, kept_vs = pruner.select(0, us, vs)  # sweep 2
        assert kept_us.size == 0 and kept_vs.size == 0
        assert pruner.pairs_skipped == 3

    def test_own_commit_does_not_retrigger(self):
        """A committed pair's gain is exactly negated — non-positive — so
        its own touch must not force a re-evaluation next sweep."""
        pruner = ClassPruner(4)
        us, vs = np.array([0]), np.array([1])
        pruner.select(0, us, vs)
        pruner.mark(us, vs)  # the pair commits itself
        kept_us, _ = pruner.select(0, us, vs)
        assert kept_us.size == 0

    def test_later_touch_retriggers(self):
        pruner = ClassPruner(4)
        class_a = (np.array([0]), np.array([1]))
        class_b = (np.array([1]), np.array([2]))
        pruner.select(0, *class_a)
        pruner.select(1, *class_b)
        pruner.mark(np.array([1]), np.array([2]))  # class b commits
        # Next sweep: class a shares endpoint 1 with the commit.
        kept_us, kept_vs = pruner.select(0, *class_a)
        np.testing.assert_array_equal(kept_us, [0])
        np.testing.assert_array_equal(kept_vs, [1])
        # ... while class b itself (self-commit only) stays clean.
        kept_us, _ = pruner.select(1, *class_b)
        assert kept_us.size == 0

    def test_partial_selection_preserves_alignment(self):
        pruner = ClassPruner(8)
        us, vs = np.array([0, 2, 4, 6]), np.array([1, 3, 5, 7])
        pruner.select(0, us, vs)
        pruner.mark(np.array([4]), np.array([5]))
        other = (np.array([5]), np.array([6]))
        pruner.select(1, *other)
        pruner.mark(*other)
        kept_us, kept_vs = pruner.select(0, us, vs)
        np.testing.assert_array_equal(kept_us, [4, 6])
        np.testing.assert_array_equal(kept_vs, [5, 7])

    def test_stats_and_sweep_counter(self):
        pruner = ClassPruner(4)
        pruner.select(0, np.array([0]), np.array([1]))
        pruner.end_sweep()
        assert pruner.sweeps == 1
        stats = pruner.stats()
        assert stats == {"pairs_evaluated": 1, "pairs_skipped": 0}
        assert all(type(v) is int for v in stats.values())
