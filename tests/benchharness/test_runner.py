"""Tests for the experiment runners (small workloads only)."""

from __future__ import annotations

import pytest

from repro.benchharness.runner import (
    measure_error_matrix,
    measure_rearrangement,
    measure_total_pipeline,
    quality_comparison,
)
from repro.benchharness.workloads import workload_pair

SMALL = workload_pair(64, 8)  # 64 tiles of 8x8 px


class TestMeasureErrorMatrix:
    def test_cpu_slower_than_gpu_model(self):
        """The table's defining shape: scalar loop loses to vectorised."""
        m = measure_error_matrix(SMALL)
        assert m.cpu_seconds > m.gpu_seconds

    def test_model_fields_positive(self):
        m = measure_error_matrix(SMALL)
        assert m.model_cpu_seconds > 0
        assert m.model_gpu_seconds > 0
        # At this toy size the model rightly predicts launch overhead
        # dominating; at paper scale it must predict a large win.
        paper = measure_error_matrix.__globals__["_MODEL"]
        assert (
            paper.error_matrix_time(2048, 4096, "cpu")
            / paper.error_matrix_time(2048, 4096, "gpu")
            > 30
        )


class TestMeasureRearrangement:
    def test_returns_both_algorithms(self):
        out = measure_rearrangement(SMALL)
        assert set(out) == {"optimization", "approximation"}

    def test_quality_ordering_in_extras(self):
        out = measure_rearrangement(SMALL)
        extras = out["approximation"].extras
        assert extras["optimal_error"] <= extras["serial_error"]
        assert extras["optimal_error"] <= extras["parallel_error"]

    def test_sweep_counts_recorded(self):
        extras = measure_rearrangement(SMALL)["approximation"].extras
        assert extras["serial_sweeps"] >= 1
        assert extras["parallel_sweeps"] >= 1


class TestMeasureTotalPipeline:
    def test_totals_are_sums(self):
        out = measure_total_pipeline(SMALL)
        for algo in ("optimization", "approximation"):
            m = out[algo]
            assert m.cpu_seconds > 0
            assert m.gpu_seconds > 0

    def test_model_speedup_shapes(self):
        out = measure_total_pipeline(SMALL)
        assert out["approximation"].model_speedup > 0
        assert out["optimization"].model_speedup > 0


class TestQualityComparison:
    def test_table1_row(self):
        q = quality_comparison(SMALL)
        assert q["optimization"] <= q["approximation_cpu"]
        assert q["optimization"] <= q["approximation_gpu"]
        assert q["total_error_check"] == q["optimization"]

    def test_cpu_gpu_orders_close(self):
        """Paper: 'their total errors differ, but the difference is small'."""
        q = quality_comparison(SMALL)
        gap = abs(q["approximation_cpu"] - q["approximation_gpu"])
        assert gap <= 0.05 * q["approximation_cpu"]
