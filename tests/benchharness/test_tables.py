"""Tests for table formatting."""

from __future__ import annotations

import math

from repro.benchharness.tables import format_table, speedup


class TestSpeedup:
    def test_ratio(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_zero_gpu_is_inf(self):
        assert speedup(1.0, 0.0) == math.inf


class TestFormatTable:
    def test_contains_title_and_headers(self):
        text = format_table("My Table", ["a", "bb"], [[1, 2.5]])
        assert text.startswith("My Table")
        assert "bb" in text

    def test_row_count(self):
        text = format_table("T", ["x"], [[1], [2], [3]])
        assert len(text.splitlines()) == 2 + 3 + 1  # title + header + sep + rows

    def test_alignment_width(self):
        text = format_table("T", ["col"], [[123456]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[3])

    def test_float_formatting(self):
        text = format_table("T", ["v"], [[0.12345], [1.23456], [123.456]])
        assert "0.1234" in text or "0.1235" in text
        assert "1.235" in text
        assert "123.5" in text
