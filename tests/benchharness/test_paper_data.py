"""Consistency tests for the transcribed paper data."""

from __future__ import annotations

import pytest

from repro.benchharness.paper_data import (
    IMAGE_SIZES,
    SWEEP_COUNTS,
    TABLE1_TOTAL_ERROR,
    TABLE2_STEP2_TIME,
    TABLE3_STEP3_TIME,
    TABLE4_SPEEDUP,
    TILE_COUNTS,
    headline_speedups,
)


class TestGridCompleteness:
    @pytest.mark.parametrize(
        "table", [TABLE2_STEP2_TIME, TABLE3_STEP3_TIME, TABLE4_SPEEDUP]
    )
    def test_every_cell_present(self, table):
        assert set(table) == {(n, s) for n in IMAGE_SIZES for s in TILE_COUNTS}

    def test_table1_covers_tile_counts(self):
        assert set(TABLE1_TOTAL_ERROR) == set(TILE_COUNTS)
        assert set(SWEEP_COUNTS) == set(TILE_COUNTS)


class TestInternalConsistency:
    def test_table1_optimization_is_minimum(self):
        for opt, cpu, gpu in TABLE1_TOTAL_ERROR.values():
            assert opt < cpu
            assert opt < gpu

    def test_table1_error_decreases_with_s(self):
        opts = [TABLE1_TOTAL_ERROR[s][0] for s in sorted(TABLE1_TOTAL_ERROR)]
        assert opts == sorted(opts, reverse=True)

    def test_table2_speedup_column_consistent(self):
        for cpu, gpu, speedup in TABLE2_STEP2_TIME.values():
            assert cpu / gpu == pytest.approx(speedup, rel=0.05)

    def test_table2_cpu_time_grows_with_n_and_s(self):
        for s in TILE_COUNTS:
            series = [TABLE2_STEP2_TIME[(n, s)][0] for n in IMAGE_SIZES]
            assert series == sorted(series)
        for n in IMAGE_SIZES:
            series = [TABLE2_STEP2_TIME[(n, s)][0] for s in TILE_COUNTS]
            assert series == sorted(series)

    def test_table3_matching_independent_of_n(self):
        """Step 3 'does not depend on the size of image': the optimization
        column varies only ~13% across N at fixed S (paper noise band)."""
        for s in TILE_COUNTS:
            series = [TABLE3_STEP3_TIME[(n, s)][0] for n in IMAGE_SIZES]
            assert max(series) <= 1.15 * min(series)

    def test_table3_speedup_column_consistent(self):
        for _, apx_cpu, apx_gpu, speedup in TABLE3_STEP3_TIME.values():
            assert apx_cpu / apx_gpu == pytest.approx(speedup, rel=0.1)

    def test_table3_gpu_loses_at_smallest_s(self):
        for n in IMAGE_SIZES:
            assert TABLE3_STEP3_TIME[(n, 256)][3] < 1.0

    def test_table4_approx_speedup_grows_with_n(self):
        for s in TILE_COUNTS:
            series = [TABLE4_SPEEDUP[(n, s)][1] for n in IMAGE_SIZES]
            assert series == sorted(series)

    def test_table4_opt_speedup_collapses_with_s(self):
        for n in IMAGE_SIZES:
            series = [TABLE4_SPEEDUP[(n, s)][0] for s in TILE_COUNTS]
            assert series == sorted(series, reverse=True)

    def test_headline_claims(self):
        opt, apx = headline_speedups()
        assert opt == 40.74  # "up to 40 times"
        assert apx == 66.76  # "up to 66 times"
