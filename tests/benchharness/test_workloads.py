"""Tests for workload definitions."""

from __future__ import annotations

import pytest

from repro.benchharness.workloads import (
    PAPER_IMAGE_SIZES,
    PAPER_PAIRS,
    PAPER_TILE_GRIDS,
    Workload,
    default_profile,
    paper_grid,
    workload_pair,
)


class TestPaperGrid:
    def test_full_profile_is_paper_grid(self):
        grid = paper_grid("full")
        assert len(grid) == 9
        assert (2048, 64) in grid
        assert {n for n, _ in grid} == set(PAPER_IMAGE_SIZES)
        assert {t for _, t in grid} == set(PAPER_TILE_GRIDS)

    def test_default_profile_scaled_down(self):
        grid = paper_grid("default")
        assert len(grid) == 9
        assert max(n for n, _ in grid) <= 512

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="profile"):
            paper_grid("huge")

    def test_default_profile_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        assert default_profile() == "default"
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert default_profile() == "full"


class TestWorkload:
    def test_derived_quantities(self):
        w = Workload("portrait", "sailboat", n=512, tiles_per_side=32)
        assert w.tile_count == 1024
        assert w.tile_size == 16
        assert "S=32^2" in w.label

    def test_images_deterministic(self):
        w = workload_pair(128, 8)
        a_in, a_tg = w.images()
        b_in, b_tg = w.images()
        assert (a_in == b_in).all()
        assert (a_tg == b_tg).all()

    def test_tiles_shapes(self):
        w = workload_pair(128, 8)
        tiles_in, tiles_tg = w.tiles()
        assert tiles_in.shape == (64, 16, 16)
        assert tiles_tg.shape == tiles_in.shape

    def test_pair_index_wraps(self):
        assert workload_pair(128, 8, pair_index=len(PAPER_PAIRS)).input_name == (
            PAPER_PAIRS[0][0]
        )

    def test_first_pair_is_portrait_sailboat(self):
        w = workload_pair(128, 8, pair_index=0)
        assert (w.input_name, w.target_name) == ("portrait", "sailboat")
