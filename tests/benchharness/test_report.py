"""Tests for the CLI table generators (repro.benchharness.report)."""

from __future__ import annotations

import pytest

import repro.benchharness.report as report_mod
from repro.benchharness.report import all_tables, table1, table2, table3, table4


@pytest.fixture(autouse=True)
def tiny_grid(monkeypatch):
    """Shrink the measured grid so every table builds in well under a second."""
    monkeypatch.setattr(report_mod, "paper_grid", lambda profile: [(64, 4), (64, 8)])


class TestTables:
    def test_table1_structure(self):
        text = table1()
        assert text.startswith("Table I reproduction")
        assert "paper opt" in text

    def test_table2_rows_match_grid(self):
        text = table2()
        lines = text.splitlines()
        assert len(lines) == 3 + 2  # title + header + separator + 2 cells

    def test_table3_contains_sweeps_column(self):
        assert "apx GPU[s]" in table3()

    def test_table4_contains_model_columns(self):
        text = table4()
        assert "model opt spdup" in text
        assert "model apx spdup" in text

    def test_all_tables_concatenates(self):
        text = all_tables()
        for fragment in ("Table I", "Table II", "Table III", "Table IV"):
            assert fragment in text


class TestCliBench(object):
    def test_bench_subcommand_prints_table(self, capsys):
        from repro.cli import main

        assert main(["bench", "--table", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table II reproduction" in out
