"""Tests for the EXPERIMENTS.md exporter."""

from __future__ import annotations

import pytest

import repro.benchharness.export as export_mod
from repro.benchharness.export import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    _fmt,
    _table,
    generate_report,
)


class TestHelpers:
    def test_fmt_ranges(self):
        assert _fmt(123.456) == "123.5"
        assert _fmt(1.23456) == "1.235"
        assert _fmt(0.00123, 5) == "0.00123"

    def test_table_markdown_shape(self):
        lines = _table(["a", "b"], [["1", "2"], ["3", "4"]])
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 5  # header + sep + 2 rows + trailing blank


class TestPaperConstants:
    def test_table1_matches_paper(self):
        assert PAPER_TABLE1[256] == (7529146, 7701450, 7676311)
        assert PAPER_TABLE1[4096] == (3877820, 3945836, 4047410)

    def test_table2_grid_complete(self):
        assert len(PAPER_TABLE2) == 9
        for (n, s), (cpu, gpu, speedup) in PAPER_TABLE2.items():
            assert cpu / gpu == pytest.approx(speedup, rel=0.05)

    def test_table3_grid_complete(self):
        assert len(PAPER_TABLE3) == 9
        for (_, _), (opt, apx_cpu, apx_gpu, speedup) in PAPER_TABLE3.items():
            assert opt > apx_cpu  # matching always dominated the local search
            assert apx_cpu / apx_gpu == pytest.approx(speedup, rel=0.1)

    def test_table4_headline_numbers(self):
        assert PAPER_TABLE4[(2048, 256)][0] == 40.74  # the 40x claim
        assert PAPER_TABLE4[(2048, 4096)][1] == 66.76  # the 66x claim


class TestGenerateReport:
    def test_report_structure_on_tiny_grid(self, monkeypatch):
        # Shrink the measured grid so the test runs in well under a second.
        monkeypatch.setattr(
            export_mod, "paper_grid", lambda profile: [(64, 4)]
        )
        report = generate_report("default")
        assert "# EXPERIMENTS" in report
        assert "## Table I" in report
        assert "## Table II" in report
        assert "## Table III" in report
        assert "## Table IV" in report
        assert "## Figures" in report
        # The headline paper numbers must appear in the fidelity line.
        assert "66.76" in report
