"""Tests for figure-composition helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.imaging.draw import draw_tile_borders, montage, side_by_side


class TestDrawTileBorders:
    def test_grid_lines_set(self):
        img = np.full((16, 16), 200, dtype=np.uint8)
        out = draw_tile_borders(img, 8, intensity=0)
        assert (out[0, :] == 0).all()
        assert (out[8, :] == 0).all()
        assert (out[:, 8] == 0).all()
        assert (out[15, :] == 0).all()  # closing edge

    def test_interior_untouched(self):
        img = np.full((16, 16), 200, dtype=np.uint8)
        out = draw_tile_borders(img, 8)
        assert out[4, 4] == 200

    def test_input_not_mutated(self):
        img = np.full((8, 8), 100, dtype=np.uint8)
        draw_tile_borders(img, 4)
        assert (img == 100).all()

    def test_color_image(self):
        img = np.full((8, 8, 3), 100, dtype=np.uint8)
        out = draw_tile_borders(img, 4, intensity=255)
        assert (out[0, 0] == 255).all()

    def test_rejects_nondivisible(self):
        with pytest.raises(ValidationError, match="divide"):
            draw_tile_borders(np.zeros((10, 10), dtype=np.uint8), 3)

    def test_rejects_bad_intensity(self):
        with pytest.raises(ValidationError, match="intensity"):
            draw_tile_borders(np.zeros((8, 8), dtype=np.uint8), 4, intensity=300)


class TestMontage:
    def test_shape_two_by_two(self):
        imgs = [np.zeros((10, 12), dtype=np.uint8)] * 4
        out = montage(imgs, cols=2, pad=2)
        assert out.shape == (2 * 10 + 3 * 2, 2 * 12 + 3 * 2)

    def test_default_cols_square(self):
        imgs = [np.zeros((4, 4), dtype=np.uint8)] * 9
        out = montage(imgs, pad=0)
        assert out.shape == (12, 12)

    def test_images_placed_row_major(self):
        a = np.full((4, 4), 10, dtype=np.uint8)
        b = np.full((4, 4), 20, dtype=np.uint8)
        out = montage([a, b], cols=2, pad=0)
        assert out[0, 0] == 10
        assert out[0, 4] == 20

    def test_background_fills_missing_cells(self):
        imgs = [np.zeros((4, 4), dtype=np.uint8)] * 3
        out = montage(imgs, cols=2, pad=0, background=255)
        assert out[4, 4] == 255  # empty fourth cell

    def test_color_montage(self):
        imgs = [np.zeros((4, 4, 3), dtype=np.uint8)] * 2
        out = montage(imgs, cols=2)
        assert out.ndim == 3

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="at least one"):
            montage([])

    def test_rejects_mixed_shapes(self):
        with pytest.raises(ValidationError, match="share shape"):
            montage(
                [np.zeros((4, 4), dtype=np.uint8), np.zeros((5, 5), dtype=np.uint8)]
            )

    def test_rejects_negative_pad(self):
        with pytest.raises(ValidationError, match="pad"):
            montage([np.zeros((4, 4), dtype=np.uint8)], pad=-1)


class TestSideBySide:
    def test_single_row(self):
        imgs = [np.zeros((6, 6), dtype=np.uint8)] * 3
        out = side_by_side(*imgs, pad=1)
        assert out.shape == (6 + 2, 3 * 6 + 4)
