"""Tests for resizing and shape adjustment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.imaging.resize import crop_to_multiple, pad_to_multiple, resize


class TestResize:
    def test_identity_returns_copy(self, rng):
        img = rng.integers(0, 256, size=(8, 8)).astype(np.uint8)
        out = resize(img, 8, 8)
        assert (out == img).all()
        assert out is not img

    @pytest.mark.parametrize("method", ["nearest", "bilinear"])
    def test_constant_image_stays_constant(self, method):
        img = np.full((10, 10), 77, dtype=np.uint8)
        out = resize(img, 23, 5, method=method)
        assert (out == 77).all()
        assert out.shape == (23, 5)

    def test_nearest_upscale_2x_repeats(self):
        img = np.array([[0, 100], [200, 50]], dtype=np.uint8)
        out = resize(img, 4, 4, method="nearest")
        assert (out[:2, :2] == 0).all()
        assert (out[2:, :2] == 200).all()

    def test_bilinear_downscale_averages(self):
        img = np.array([[0, 0], [200, 200]], dtype=np.uint8)
        out = resize(img, 1, 1, method="bilinear")
        assert out[0, 0] == 100

    def test_color_resize(self, rng):
        img = rng.integers(0, 256, size=(6, 6, 3)).astype(np.uint8)
        out = resize(img, 12, 3)
        assert out.shape == (12, 3, 3)

    def test_bilinear_preserves_range(self, rng):
        img = rng.integers(0, 256, size=(9, 7)).astype(np.uint8)
        out = resize(img, 20, 20)
        assert out.min() >= img.min()
        assert out.max() <= img.max()

    def test_unknown_method(self):
        with pytest.raises(ValidationError, match="method"):
            resize(np.zeros((4, 4), dtype=np.uint8), 2, 2, method="cubic")

    def test_rejects_zero_target(self):
        with pytest.raises(ValidationError):
            resize(np.zeros((4, 4), dtype=np.uint8), 0, 2)


class TestCropToMultiple:
    def test_exact_multiple_unchanged(self, rng):
        img = rng.integers(0, 256, size=(16, 16)).astype(np.uint8)
        assert (crop_to_multiple(img, 8) == img).all()

    def test_crops_centre(self):
        img = np.zeros((10, 10), dtype=np.uint8)
        img[1:9, 1:9] = 1
        out = crop_to_multiple(img, 8)
        assert out.shape == (8, 8)
        assert (out == 1).all()

    def test_too_small_raises(self):
        with pytest.raises(ValidationError, match="smaller"):
            crop_to_multiple(np.zeros((4, 4), dtype=np.uint8), 8)


class TestPadToMultiple:
    def test_exact_multiple_unchanged(self, rng):
        img = rng.integers(0, 256, size=(8, 8)).astype(np.uint8)
        out = pad_to_multiple(img, 4)
        assert (out == img).all()

    def test_pads_bottom_right(self):
        img = np.full((5, 6), 3, dtype=np.uint8)
        out = pad_to_multiple(img, 4)
        assert out.shape == (8, 8)
        # edge mode: padding replicates the boundary value
        assert (out == 3).all()

    def test_color_pad(self):
        img = np.zeros((5, 5, 3), dtype=np.uint8)
        out = pad_to_multiple(img, 4)
        assert out.shape == (8, 8, 3)
