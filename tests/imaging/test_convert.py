"""Tests for grayscale/colour conversion."""

from __future__ import annotations

import numpy as np

from repro.imaging.convert import ensure_gray, gray_to_rgb, rgb_to_gray


class TestRgbToGray:
    def test_pure_channels_use_bt601_weights(self):
        img = np.zeros((1, 3, 3), dtype=np.uint8)
        img[0, 0] = (255, 0, 0)
        img[0, 1] = (0, 255, 0)
        img[0, 2] = (0, 0, 255)
        gray = rgb_to_gray(img)
        assert gray[0, 0] == round(0.299 * 255)
        assert gray[0, 1] == round(0.587 * 255)
        assert gray[0, 2] == round(0.114 * 255)

    def test_white_stays_white(self):
        img = np.full((2, 2, 3), 255, dtype=np.uint8)
        assert (rgb_to_gray(img) == 255).all()

    def test_gray_passes_through(self):
        img = np.full((2, 2), 7, dtype=np.uint8)
        assert rgb_to_gray(img) is img

    def test_neutral_rgb_is_identity(self, rng):
        levels = rng.integers(0, 256, size=(4, 4)).astype(np.uint8)
        img = np.repeat(levels[:, :, None], 3, axis=2)
        assert (rgb_to_gray(img) == levels).all()


class TestGrayToRgb:
    def test_replicates_channels(self):
        img = np.array([[5, 9]], dtype=np.uint8)
        rgb = gray_to_rgb(img)
        assert rgb.shape == (1, 2, 3)
        assert (rgb[:, :, 0] == rgb[:, :, 1]).all()
        assert (rgb[:, :, 1] == rgb[:, :, 2]).all()
        assert rgb[0, 1, 0] == 9

    def test_color_passes_through(self):
        img = np.zeros((2, 2, 3), dtype=np.uint8)
        assert gray_to_rgb(img) is img


class TestEnsureGray:
    def test_on_gray(self):
        img = np.zeros((3, 3), dtype=np.uint8)
        assert ensure_gray(img).ndim == 2

    def test_on_color(self):
        img = np.zeros((3, 3, 3), dtype=np.uint8)
        assert ensure_gray(img).ndim == 2

    def test_roundtrip_gray_rgb_gray(self, rng):
        gray = rng.integers(0, 256, size=(6, 6)).astype(np.uint8)
        assert (ensure_gray(gray_to_rgb(gray)) == gray).all()
