"""Tests for image quality metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.imaging.metrics import mae, mse, psnr, ssim


class TestMae:
    def test_identical_is_zero(self, rng):
        img = rng.integers(0, 256, size=(8, 8)).astype(np.uint8)
        assert mae(img, img) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 2), dtype=np.uint8)
        b = np.full((2, 2), 10, dtype=np.uint8)
        assert mae(a, b) == 10.0

    def test_symmetric(self, rng):
        a = rng.integers(0, 256, size=(6, 6)).astype(np.uint8)
        b = rng.integers(0, 256, size=(6, 6)).astype(np.uint8)
        assert mae(a, b) == mae(b, a)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError, match="differ"):
            mae(np.zeros((2, 2), dtype=np.uint8), np.zeros((3, 3), dtype=np.uint8))


class TestMsePsnr:
    def test_mse_known_value(self):
        a = np.zeros((2, 2), dtype=np.uint8)
        b = np.full((2, 2), 3, dtype=np.uint8)
        assert mse(a, b) == 9.0

    def test_psnr_identical_is_inf(self):
        img = np.zeros((4, 4), dtype=np.uint8)
        assert psnr(img, img) == math.inf

    def test_psnr_known_value(self):
        a = np.zeros((2, 2), dtype=np.uint8)
        b = np.full((2, 2), 255, dtype=np.uint8)
        assert psnr(a, b) == pytest.approx(0.0)

    def test_psnr_decreases_with_noise(self, rng):
        base = rng.integers(100, 156, size=(16, 16)).astype(np.uint8)
        small = np.clip(base.astype(int) + 2, 0, 255).astype(np.uint8)
        large = np.clip(base.astype(int) + 40, 0, 255).astype(np.uint8)
        assert psnr(base, small) > psnr(base, large)


class TestSsim:
    def test_identical_is_one(self, rng):
        img = rng.integers(0, 256, size=(16, 16)).astype(np.uint8)
        assert ssim(img, img) == pytest.approx(1.0)

    def test_bounded(self, rng):
        a = rng.integers(0, 256, size=(16, 16)).astype(np.uint8)
        b = rng.integers(0, 256, size=(16, 16)).astype(np.uint8)
        value = ssim(a, b)
        assert -1.0 <= value <= 1.0

    def test_more_distortion_lower_ssim(self, rng):
        base = rng.integers(60, 200, size=(24, 24)).astype(np.uint8)
        mild = np.clip(base.astype(int) + rng.integers(-5, 6, base.shape), 0, 255).astype(np.uint8)
        harsh = rng.integers(0, 256, size=base.shape).astype(np.uint8)
        assert ssim(base, mild) > ssim(base, harsh)

    def test_color_averages_channels(self, rng):
        img = rng.integers(0, 256, size=(16, 16, 3)).astype(np.uint8)
        assert ssim(img, img) == pytest.approx(1.0)

    def test_window_too_large(self):
        with pytest.raises(ValidationError, match="window"):
            ssim(np.zeros((4, 4), dtype=np.uint8), np.zeros((4, 4), dtype=np.uint8), window=8)

    def test_window_too_small(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        with pytest.raises(ValidationError, match="window"):
            ssim(img, img, window=1)
