"""Tests for the procedural standard-image stand-ins."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.imaging.synthetic import STANDARD_IMAGES, standard_image, synthetic_image


class TestStandardImage:
    @pytest.mark.parametrize("name", STANDARD_IMAGES)
    def test_every_name_generates(self, name):
        img = standard_image(name, 64)
        assert img.shape == (64, 64)
        assert img.dtype == np.uint8

    @pytest.mark.parametrize("name", STANDARD_IMAGES)
    def test_deterministic(self, name):
        assert (standard_image(name, 32) == standard_image(name, 32)).all()

    def test_names_give_distinct_images(self):
        images = [standard_image(n, 32) for n in STANDARD_IMAGES]
        for i in range(len(images)):
            for j in range(i + 1, len(images)):
                assert (images[i] != images[j]).any()

    def test_full_dynamic_range(self):
        img = standard_image("portrait", 128)
        assert img.min() == 0
        assert img.max() == 255

    @pytest.mark.parametrize("n", [16, 64, 100, 256])
    def test_arbitrary_sizes(self, n):
        assert standard_image("baboon", n).shape == (n, n)

    def test_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown standard image"):
            standard_image("lenna", 64)

    def test_has_structure_not_noise(self):
        """Neighbouring pixels must correlate (a photograph-like property)."""
        img = standard_image("sailboat", 128).astype(np.float64)
        horiz = np.abs(np.diff(img, axis=1)).mean()
        assert horiz < 30  # pure uniform noise would give ~85

    def test_baboon_is_most_textured(self):
        """The baboon stand-in mimics its namesake: highest high-frequency energy."""

        def texture(name):
            img = standard_image(name, 128).astype(np.float64)
            return np.abs(np.diff(img, axis=1)).mean()

        assert texture("baboon") > texture("tiffany")

    def test_tiffany_is_high_key_like_original(self):
        """Tiffany mimics its namesake's bright, high-key exposure."""
        means = {name: standard_image(name, 128).mean() for name in STANDARD_IMAGES}
        assert means["tiffany"] > 128
        assert means["tiffany"] > np.median(list(means.values()))


class TestSyntheticImage:
    def test_deterministic_for_seed(self):
        assert (synthetic_image(32, seed=5) == synthetic_image(32, seed=5)).all()

    def test_seeds_differ(self):
        assert (synthetic_image(32, seed=1) != synthetic_image(32, seed=2)).any()

    def test_smoothness_reduces_gradient(self):
        rough = synthetic_image(64, seed=3, smoothness=0.0).astype(np.float64)
        smooth = synthetic_image(64, seed=3, smoothness=1.0).astype(np.float64)
        assert np.abs(np.diff(smooth, axis=0)).mean() < np.abs(np.diff(rough, axis=0)).mean()

    def test_rejects_bad_smoothness(self):
        with pytest.raises(ValidationError, match="smoothness"):
            synthetic_image(16, smoothness=1.5)

    def test_rejects_bad_contrast(self):
        with pytest.raises(ValidationError, match="contrast"):
            synthetic_image(16, contrast=0.0)

    def test_rejects_bad_size(self):
        with pytest.raises(ValidationError):
            synthetic_image(0)
