"""Tests for histograms, equalization and specification (paper Fig. 3)."""

from __future__ import annotations

import numpy as np

from repro.imaging.histogram import (
    cumulative_histogram,
    histogram,
    histogram_equalize,
    match_histogram,
)
from repro.imaging.synthetic import standard_image


class TestHistogram:
    def test_counts_sum_to_pixels(self, rng):
        img = rng.integers(0, 256, size=(13, 17)).astype(np.uint8)
        assert histogram(img).sum() == img.size

    def test_has_256_bins(self):
        assert histogram(np.zeros((4, 4), dtype=np.uint8)).shape == (256,)

    def test_constant_image_single_bin(self):
        img = np.full((5, 5), 42, dtype=np.uint8)
        h = histogram(img)
        assert h[42] == 25
        assert h.sum() == 25

    def test_cdf_monotone_and_normalised(self, rng):
        img = rng.integers(0, 256, size=(20, 20)).astype(np.uint8)
        cdf = cumulative_histogram(img)
        assert (np.diff(cdf) >= 0).all()
        assert cdf[-1] == 1.0

    def test_cdf_unnormalised(self):
        img = np.zeros((4, 4), dtype=np.uint8)
        cdf = cumulative_histogram(img, normalized=False)
        assert cdf[-1] == 16


class TestEqualize:
    def test_flattens_concentrated_histogram(self, rng):
        # Narrow dynamic range in [100, 140).
        img = (100 + rng.integers(0, 40, size=(64, 64))).astype(np.uint8)
        out = histogram_equalize(img)
        assert out.max() - out.min() > 200  # stretched to (almost) full range

    def test_constant_image_is_fixed_point(self):
        img = np.full((8, 8), 99, dtype=np.uint8)
        assert (histogram_equalize(img) == 99).all()

    def test_preserves_shape_and_dtype(self, rng):
        img = rng.integers(0, 256, size=(7, 9)).astype(np.uint8)
        out = histogram_equalize(img)
        assert out.shape == img.shape
        assert out.dtype == np.uint8

    def test_monotone_in_intensity(self, rng):
        img = rng.integers(0, 256, size=(32, 32)).astype(np.uint8)
        out = histogram_equalize(img)
        order = np.argsort(img.ravel(), kind="stable")
        assert (np.diff(out.ravel()[order].astype(int)) >= 0).all()


class TestMatchHistogram:
    def test_moves_cdf_toward_reference(self):
        img = standard_image("portrait", 64)
        ref = standard_image("sailboat", 64)
        matched = match_histogram(img, ref)
        ref_cdf = cumulative_histogram(ref)
        before = np.abs(cumulative_histogram(img) - ref_cdf).mean()
        after = np.abs(cumulative_histogram(matched) - ref_cdf).mean()
        assert after < before

    def test_self_match_is_near_identity(self, rng):
        img = rng.integers(0, 256, size=(32, 32)).astype(np.uint8)
        matched = match_histogram(img, img)
        # CDF inversion of a discrete self-match can shift levels by at most
        # one occupied level; mean drift must be tiny.
        assert np.abs(matched.astype(int) - img.astype(int)).mean() < 2.0

    def test_mapping_is_monotone(self, rng):
        img = rng.integers(0, 256, size=(32, 32)).astype(np.uint8)
        ref = rng.integers(0, 256, size=(32, 32)).astype(np.uint8)
        matched = match_histogram(img, ref)
        order = np.argsort(img.ravel(), kind="stable")
        assert (np.diff(matched.ravel()[order].astype(int)) >= 0).all()

    def test_match_to_constant(self, rng):
        img = rng.integers(0, 256, size=(16, 16)).astype(np.uint8)
        ref = np.full((16, 16), 200, dtype=np.uint8)
        assert (match_histogram(img, ref) == 200).all()

    def test_reduces_rearrangement_error(self):
        """The paper's rationale: adjustment helps the rearrangement."""
        from repro.cost.matrix import error_matrix, total_error
        from repro.localsearch import local_search_parallel
        from repro.tiles.grid import TileGrid

        inp = standard_image("tiffany", 64)  # bright, low contrast
        tgt = standard_image("sailboat", 64)
        grid = TileGrid.from_tile_count(64, 8)
        tgt_tiles = grid.split(tgt)

        def solve(image):
            m = error_matrix(grid.split(image), tgt_tiles)
            r = local_search_parallel(m)
            return total_error(m, r.permutation)

        assert solve(match_histogram(inp, tgt)) < solve(inp)
