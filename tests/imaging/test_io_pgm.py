"""Tests for the Netpbm codec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ImageFormatError
from repro.imaging.io_pgm import read_netpbm, write_pgm, write_ppm


class TestRoundTrip:
    def test_pgm_roundtrip(self, tmp_path, rng):
        img = rng.integers(0, 256, size=(13, 9)).astype(np.uint8)
        path = tmp_path / "a.pgm"
        write_pgm(path, img)
        assert (read_netpbm(path) == img).all()

    def test_ppm_roundtrip(self, tmp_path, rng):
        img = rng.integers(0, 256, size=(7, 11, 3)).astype(np.uint8)
        path = tmp_path / "a.ppm"
        write_ppm(path, img)
        assert (read_netpbm(path) == img).all()

    def test_single_pixel(self, tmp_path):
        img = np.array([[200]], dtype=np.uint8)
        path = tmp_path / "one.pgm"
        write_pgm(path, img)
        assert read_netpbm(path)[0, 0] == 200


class TestReaderVariants:
    def test_reads_bytes_directly(self):
        data = b"P5\n2 2\n255\n" + bytes([1, 2, 3, 4])
        img = read_netpbm(data)
        assert img.shape == (2, 2)
        assert img[1, 1] == 4

    def test_ascii_pgm(self):
        data = b"P2\n3 2\n255\n0 10 20\n30 40 50\n"
        img = read_netpbm(data)
        assert img.shape == (2, 3)
        assert img[1, 2] == 50

    def test_ascii_ppm(self):
        data = b"P3\n1 1\n255\n10 20 30\n"
        img = read_netpbm(data)
        assert img.shape == (1, 1, 3)
        assert list(img[0, 0]) == [10, 20, 30]

    def test_comments_in_header(self):
        data = b"P5 # magic\n# a comment line\n2 1\n# another\n255\n" + bytes([9, 8])
        img = read_netpbm(data)
        assert img.shape == (1, 2)
        assert img[0, 0] == 9

    def test_maxval_rescaling(self):
        # maxval 15: value 15 must map to 255, 0 to 0.
        data = b"P5\n2 1\n15\n" + bytes([0, 15])
        img = read_netpbm(data)
        assert img[0, 0] == 0
        assert img[0, 1] == 255


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(ImageFormatError, match="magic"):
            read_netpbm(b"P9\n1 1\n255\n\x00")

    def test_truncated_raster(self):
        with pytest.raises(ImageFormatError, match="truncated"):
            read_netpbm(b"P5\n4 4\n255\n\x00\x00")

    def test_truncated_header(self):
        with pytest.raises(ImageFormatError, match="end of Netpbm header"):
            read_netpbm(b"P5\n4")

    def test_zero_dimension(self):
        with pytest.raises(ImageFormatError, match="dimensions"):
            read_netpbm(b"P5\n0 4\n255\n")

    def test_maxval_too_large(self):
        with pytest.raises(ImageFormatError, match="maxval"):
            read_netpbm(b"P5\n1 1\n65535\n\x00\x00")

    def test_sample_exceeds_maxval(self):
        with pytest.raises(ImageFormatError, match="exceeds"):
            read_netpbm(b"P2\n1 1\n100\n101\n")

    def test_write_ppm_rejects_gray(self, tmp_path):
        with pytest.raises(ImageFormatError, match="colour"):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4), dtype=np.uint8))
