"""Tests for extension-based load/save dispatch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ImageFormatError
from repro.imaging.iohub import load_image, save_image


@pytest.mark.parametrize("ext", [".png", ".pgm"])
def test_gray_roundtrip(ext, tmp_path, rng):
    img = rng.integers(0, 256, size=(10, 12)).astype(np.uint8)
    path = tmp_path / f"img{ext}"
    save_image(path, img)
    assert (load_image(path) == img).all()


@pytest.mark.parametrize("ext", [".png", ".ppm"])
def test_color_roundtrip(ext, tmp_path, rng):
    img = rng.integers(0, 256, size=(8, 8, 3)).astype(np.uint8)
    path = tmp_path / f"img{ext}"
    save_image(path, img)
    assert (load_image(path) == img).all()


def test_bmp_write_only(tmp_path):
    img = np.zeros((4, 4), dtype=np.uint8)
    path = tmp_path / "x.bmp"
    save_image(path, img)
    assert path.exists()
    with pytest.raises(ImageFormatError, match="cannot read"):
        load_image(path)


def test_unknown_write_extension(tmp_path):
    with pytest.raises(ImageFormatError, match="cannot write"):
        save_image(tmp_path / "x.jpeg", np.zeros((4, 4), dtype=np.uint8))


def test_unknown_read_extension(tmp_path):
    (tmp_path / "x.dat").write_bytes(b"junk")
    with pytest.raises(ImageFormatError, match="cannot read"):
        load_image(tmp_path / "x.dat")


def test_case_insensitive_extension(tmp_path, rng):
    img = rng.integers(0, 256, size=(5, 5)).astype(np.uint8)
    path = tmp_path / "UP.PNG"
    save_image(path, img)
    assert (load_image(path) == img).all()
