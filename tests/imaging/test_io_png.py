"""Tests for the PNG codec."""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.exceptions import ImageFormatError
from repro.imaging.io_png import read_png, write_png


def _make_png(width, height, color_type, raster, bit_depth=8):
    """Hand-roll a PNG for reader tests."""

    def chunk(tag, payload):
        return (
            struct.pack(">I", len(payload))
            + tag
            + payload
            + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
        )

    ihdr = struct.pack(">IIBBBBB", width, height, bit_depth, color_type, 0, 0, 0)
    return (
        b"\x89PNG\r\n\x1a\n"
        + chunk(b"IHDR", ihdr)
        + chunk(b"IDAT", zlib.compress(raster))
        + chunk(b"IEND", b"")
    )


class TestRoundTrip:
    def test_gray_roundtrip(self, tmp_path, rng):
        img = rng.integers(0, 256, size=(20, 15)).astype(np.uint8)
        path = tmp_path / "g.png"
        write_png(path, img)
        assert (read_png(path) == img).all()

    def test_color_roundtrip(self, tmp_path, rng):
        img = rng.integers(0, 256, size=(9, 14, 3)).astype(np.uint8)
        path = tmp_path / "c.png"
        write_png(path, img)
        assert (read_png(path) == img).all()

    def test_roundtrip_from_bytes(self, tmp_path):
        img = np.arange(16, dtype=np.uint8).reshape(4, 4)
        path = tmp_path / "b.png"
        write_png(path, img)
        data = path.read_bytes()
        assert (read_png(data) == img).all()

    def test_compress_levels(self, tmp_path, rng):
        img = rng.integers(0, 256, size=(32, 32)).astype(np.uint8)
        for level in (0, 1, 9):
            path = tmp_path / f"l{level}.png"
            write_png(path, img, compress_level=level)
            assert (read_png(path) == img).all()


class TestFilters:
    """The writer always uses filter 0; the reader must handle all five."""

    @pytest.mark.parametrize("ftype", [0, 1, 2, 3, 4])
    def test_each_filter_type(self, ftype, rng):
        width = height = 6
        img = rng.integers(0, 256, size=(height, width)).astype(np.uint8)
        # Forward-filter the raster with the given type on every row.
        raster = bytearray()
        prev = np.zeros(width, dtype=np.int32)
        for row in range(height):
            line = img[row].astype(np.int32)
            out = np.zeros(width, dtype=np.int32)
            for i in range(width):
                left = int(line[i - 1]) if i > 0 else 0
                up = int(prev[i])
                upleft = int(prev[i - 1]) if i > 0 else 0
                if ftype == 0:
                    pred = 0
                elif ftype == 1:
                    pred = left
                elif ftype == 2:
                    pred = up
                elif ftype == 3:
                    pred = (left + up) // 2
                else:
                    p = left + up - upleft
                    pa, pb, pc = abs(p - left), abs(p - up), abs(p - upleft)
                    pred = left if pa <= pb and pa <= pc else (up if pb <= pc else upleft)
                out[i] = (int(line[i]) - pred) & 0xFF
            raster.append(ftype)
            raster += bytes(int(v) for v in out)
            prev = line
        data = _make_png(width, height, 0, bytes(raster))
        assert (read_png(data) == img).all()


class TestErrors:
    def test_bad_signature(self):
        with pytest.raises(ImageFormatError, match="signature"):
            read_png(b"NOTPNG" + b"\x00" * 30)

    def test_crc_mismatch(self, tmp_path):
        img = np.zeros((4, 4), dtype=np.uint8)
        path = tmp_path / "x.png"
        write_png(path, img)
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF  # corrupt the IEND CRC
        with pytest.raises(ImageFormatError, match="CRC"):
            read_png(bytes(data))

    def test_unsupported_bit_depth(self):
        raster = b"\x00" + b"\x00"
        data = _make_png(4, 1, 0, raster, bit_depth=16)
        with pytest.raises(ImageFormatError, match="bit depth"):
            read_png(data)

    def test_unsupported_colour_type(self):
        data = _make_png(1, 1, 3, b"\x00\x00")  # palette
        with pytest.raises(ImageFormatError, match="colour type"):
            read_png(data)

    def test_missing_idat(self):
        def chunk(tag, payload):
            return (
                struct.pack(">I", len(payload))
                + tag
                + payload
                + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
            )

        ihdr = struct.pack(">IIBBBBB", 1, 1, 8, 0, 0, 0, 0)
        data = b"\x89PNG\r\n\x1a\n" + chunk(b"IHDR", ihdr) + chunk(b"IEND", b"")
        with pytest.raises(ImageFormatError, match="IDAT"):
            read_png(data)

    def test_wrong_raster_size(self):
        data = _make_png(4, 4, 0, b"\x00" * 3)  # way too short
        with pytest.raises(ImageFormatError, match="raster"):
            read_png(data)

    def test_bad_filter_type(self):
        raster = b"\x07\x00"  # filter 7 does not exist
        data = _make_png(1, 1, 0, raster)
        with pytest.raises(ImageFormatError, match="filter type"):
            read_png(data)
