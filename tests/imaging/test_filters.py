"""Tests for spatial filters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.imaging.filters import (
    box_blur,
    gaussian_blur,
    gradient_magnitude,
    sobel_gradients,
)


class TestBoxBlur:
    def test_constant_invariant(self):
        img = np.full((10, 10), 77, dtype=np.uint8)
        assert (box_blur(img) == 77).all()

    def test_reduces_variance(self, rng):
        img = rng.integers(0, 256, size=(32, 32)).astype(np.uint8)
        assert box_blur(img, radius=2).std() < img.std()

    def test_known_interior_value(self):
        img = np.zeros((5, 5), dtype=np.uint8)
        img[2, 2] = 9
        out = box_blur(img, radius=1)
        assert out[2, 2] == 1  # 9/9 rounded

    def test_preserves_mean_approximately(self, rng):
        img = rng.integers(0, 256, size=(64, 64)).astype(np.uint8)
        assert abs(float(box_blur(img).mean()) - float(img.mean())) < 2.0

    def test_rejects_bad_radius(self):
        with pytest.raises(ValidationError):
            box_blur(np.zeros((4, 4), dtype=np.uint8), radius=0)


class TestGaussianBlur:
    def test_constant_invariant(self):
        img = np.full((8, 8), 200, dtype=np.uint8)
        assert (gaussian_blur(img, sigma=2.0) == 200).all()

    def test_larger_sigma_smoother(self, rng):
        img = rng.integers(0, 256, size=(48, 48)).astype(np.uint8)
        mild = gaussian_blur(img, sigma=0.5)
        strong = gaussian_blur(img, sigma=3.0)
        assert strong.std() < mild.std()

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValidationError, match="sigma"):
            gaussian_blur(np.zeros((4, 4), dtype=np.uint8), sigma=0.0)


class TestSobel:
    def test_flat_image_zero_gradient(self):
        img = np.full((8, 8), 120, dtype=np.uint8)
        gy, gx = sobel_gradients(img)
        assert (gy == 0).all()
        assert (gx == 0).all()

    def test_vertical_edge_detected_by_gx(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        img[:, 4:] = 200
        gy, gx = sobel_gradients(img)
        assert np.abs(gx).max() > 0
        assert np.abs(gy).max() == 0

    def test_horizontal_edge_detected_by_gy(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        img[4:, :] = 200
        gy, gx = sobel_gradients(img)
        assert np.abs(gy).max() > 0
        assert np.abs(gx).max() == 0

    def test_step_edge_magnitude(self):
        # Classic Sobel response to a unit step of height h: 4h at the edge.
        img = np.zeros((8, 8), dtype=np.uint8)
        img[:, 4:] = 50
        _, gx = sobel_gradients(img)
        assert np.abs(gx).max() == 4 * 50


class TestGradientMagnitude:
    def test_dtype_and_range(self, rng):
        img = rng.integers(0, 256, size=(16, 16)).astype(np.uint8)
        mag = gradient_magnitude(img)
        assert mag.dtype == np.uint8

    def test_normalized_hits_255_on_edges(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        img[:, 4:] = 255
        assert gradient_magnitude(img, normalize=True).max() == 255

    def test_unnormalized_clips(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        img[:, 4:] = 255  # raw magnitude 1020 >> 255
        mag = gradient_magnitude(img, normalize=False)
        assert mag.max() == 255

    def test_flat_is_zero(self):
        img = np.full((8, 8), 99, dtype=np.uint8)
        assert (gradient_magnitude(img) == 0).all()
