"""Tests for the BMP writer (structure-level checks; BMP is write-only)."""

from __future__ import annotations

import struct

import numpy as np

from repro.imaging.io_bmp import write_bmp


def _parse_header(data: bytes):
    magic, file_size, _, _, offset = struct.unpack("<2sIHHI", data[:14])
    (hdr_size, width, height, planes, bits) = struct.unpack("<IiiHH", data[14:30])
    return {
        "magic": magic,
        "file_size": file_size,
        "offset": offset,
        "width": width,
        "height": height,
        "bits": bits,
        "planes": planes,
    }


def test_gray_header_fields(tmp_path):
    img = np.zeros((5, 7), dtype=np.uint8)
    path = tmp_path / "g.bmp"
    write_bmp(path, img)
    h = _parse_header(path.read_bytes())
    assert h["magic"] == b"BM"
    assert (h["width"], h["height"]) == (7, 5)
    assert h["bits"] == 8
    assert h["planes"] == 1


def test_color_header_fields(tmp_path):
    img = np.zeros((4, 4, 3), dtype=np.uint8)
    path = tmp_path / "c.bmp"
    write_bmp(path, img)
    h = _parse_header(path.read_bytes())
    assert h["bits"] == 24


def test_file_size_matches_declared(tmp_path, rng):
    img = rng.integers(0, 256, size=(6, 5)).astype(np.uint8)
    path = tmp_path / "s.bmp"
    write_bmp(path, img)
    data = path.read_bytes()
    assert len(data) == _parse_header(data)["file_size"]


def test_gray_pixel_recoverable(tmp_path):
    # Bottom-up rows with an identity palette: last raster row is image row 0.
    img = np.array([[10, 20], [30, 40]], dtype=np.uint8)
    path = tmp_path / "p.bmp"
    write_bmp(path, img)
    data = path.read_bytes()
    offset = _parse_header(data)["offset"]
    stride = 4  # width 2 padded to 4
    bottom_row = data[offset : offset + 2]
    assert list(bottom_row) == [30, 40]
    top_row = data[offset + stride : offset + stride + 2]
    assert list(top_row) == [10, 20]


def test_color_stored_bgr(tmp_path):
    img = np.zeros((1, 1, 3), dtype=np.uint8)
    img[0, 0] = (255, 0, 10)  # RGB
    path = tmp_path / "bgr.bmp"
    write_bmp(path, img)
    data = path.read_bytes()
    offset = _parse_header(data)["offset"]
    assert list(data[offset : offset + 3]) == [10, 0, 255]  # BGR
