"""Tests for colour stand-in generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.imaging.convert import rgb_to_gray
from repro.imaging.synthetic import STANDARD_IMAGES, standard_image
from repro.imaging.synthetic_color import standard_image_color


@pytest.mark.parametrize("name", STANDARD_IMAGES)
def test_every_name_has_color_variant(name):
    img = standard_image_color(name, 64)
    assert img.shape == (64, 64, 3)
    assert img.dtype == np.uint8


def test_deterministic():
    a = standard_image_color("peppers", 48)
    b = standard_image_color("peppers", 48)
    assert (a == b).all()


def test_channels_not_identical():
    """The hue perturbation must decorrelate the channels."""
    img = standard_image_color("sailboat", 64)
    assert (img[:, :, 0] != img[:, :, 2]).any()


def test_luma_tracks_gray_original():
    """The colour variant's luminance must correlate with the gray image
    it was built from (structure preserved)."""
    gray = standard_image("portrait", 64).astype(np.float64).ravel()
    luma = rgb_to_gray(standard_image_color("portrait", 64)).astype(np.float64).ravel()
    corr = np.corrcoef(gray, luma)[0, 1]
    assert corr > 0.9


def test_unknown_name():
    with pytest.raises(ValidationError, match="unknown standard image"):
        standard_image_color("lena", 64)


def test_peppers_is_most_colorful():
    """Peppers' palette has the widest channel spread (red vs green)."""

    def spread(name):
        img = standard_image_color(name, 64).astype(np.float64)
        return np.abs(img[:, :, 0] - img[:, :, 1]).mean()

    assert spread("peppers") > spread("airplane")


def test_color_pipeline_end_to_end():
    from repro import generate_photomosaic

    inp = standard_image_color("peppers", 64)
    tgt = standard_image_color("portrait", 64)
    result = generate_photomosaic(inp, tgt, tile_size=8, metric="color")
    assert result.image.shape == (64, 64, 3)
    # Rearrangement preserves the pixel multiset of the (unadjusted) input.
    assert (np.sort(result.image.ravel()) == np.sort(inp.ravel())).all()
