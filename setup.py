"""Legacy setup shim.

This environment has no ``wheel`` package and no network access, so PEP 660
editable installs (which require building a wheel) fail.  Keeping a
``setup.py`` alongside ``pyproject.toml`` lets ``pip install -e .`` fall
back to the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
